//! **Ablation — communication-efficient split aggregation.**
//!
//! Sweeps the [`pdc_pclouds::CommConfig`] × [`pdc_cgm::CollectiveTuning`]
//! space on the fig-1 training workload at p ∈ {4, 8, 16} and writes
//! `results/ablation_comm.csv`. Four configurations, each adding one
//! mechanism:
//!
//! * **baseline** — per-attribute binomial combines (the historical
//!   schedule; asserted bit-identical to the plain harness run),
//! * **batched** — one reduce-scatter per node carrying every attribute's
//!   histogram (`A` collectives → 1; `A − 1` fewer α startups per node),
//! * **adaptive** — batched, plus cost-model-driven algorithm selection
//!   (recursive halving when it beats the fan-in schedule),
//! * **sparse** — adaptive, plus varint sparse wire encoding of the
//!   interval count arrays (smaller `beta·m`, identical decoded values).
//!
//! The assertions are the regression contract: every configuration computes
//! a byte-identical tree, and each mechanism strictly reduces the total
//! virtual communication time at every processor count.

use pdc_bench::harness::{csv_flag, run_pclouds, run_pclouds_comm, Scale, TableWriter};
use pdc_bench::summary::BenchSummary;
use pdc_dnc::Strategy;
use pdc_pclouds::CommConfig;

struct Row {
    p: usize,
    config: &'static str,
    makespan: f64,
    comm_time: f64,
    bytes_sent: u64,
    messages_sent: u64,
}

fn main() {
    let scale = Scale::from_env();
    let csv = csv_flag();
    let n = scale.records(1_200_000);
    let strategy = Strategy::Mixed;
    eprintln!("ablation_comm: n={n}");
    let mut rows: Vec<Row> = Vec::new();

    for p in [4usize, 8, 16] {
        // --- Regression: with every new path disabled, the run is the
        // historical schedule bit for bit.
        let plain = run_pclouds(n, p, scale, strategy);
        let baseline =
            run_pclouds_comm(n, p, scale, strategy, CommConfig::default(), false);
        assert_eq!(plain.tree, baseline.tree);
        for (a, b) in plain.run.stats.iter().zip(&baseline.run.stats) {
            assert_eq!(
                a.finish_time.to_bits(),
                b.finish_time.to_bits(),
                "p={p} rank {}: disabled comm paths must be bit-identical",
                a.rank
            );
            assert_eq!(
                a.counters, b.counters,
                "p={p} rank {}: disabled comm paths must leave all counters \
                 identical",
                a.rank
            );
        }

        // --- The ladder: each step adds one mechanism and must strictly
        // reduce total virtual comm time while computing the same tree.
        let batched = run_pclouds_comm(
            n,
            p,
            scale,
            strategy,
            CommConfig {
                batched_stats: true,
                sparse_histograms: false,
            },
            false,
        );
        let adaptive = run_pclouds_comm(
            n,
            p,
            scale,
            strategy,
            CommConfig {
                batched_stats: true,
                sparse_histograms: false,
            },
            true,
        );
        let sparse =
            run_pclouds_comm(n, p, scale, strategy, CommConfig::efficient(), true);

        let ladder = [
            ("baseline", &baseline),
            ("batched", &batched),
            ("adaptive", &adaptive),
            ("sparse", &sparse),
        ];
        for (name, out) in &ladder {
            assert_eq!(
                out.tree, baseline.tree,
                "p={p} {name}: the communication schedule must never change \
                 the computed tree"
            );
            let t = out.run.total_counters();
            rows.push(Row {
                p,
                config: name,
                makespan: out.runtime(),
                comm_time: t.comm_time,
                bytes_sent: t.bytes_sent,
                messages_sent: t.messages_sent,
            });
        }
        for pair in ladder.windows(2) {
            let (prev_name, prev) = &pair[0];
            let (next_name, next) = &pair[1];
            let (a, b) = (
                prev.run.total_counters().comm_time,
                next.run.total_counters().comm_time,
            );
            assert!(
                b < a,
                "p={p}: {next_name} must strictly reduce comm time over \
                 {prev_name} ({b} !< {a})"
            );
        }
        let (base_t, full_t) = (
            baseline.run.total_counters().comm_time,
            sparse.run.total_counters().comm_time,
        );
        eprintln!(
            "  p={p}: comm {base_t:.4}s -> {full_t:.4}s ({:.1}% saved), \
             msgs {} -> {}",
            100.0 * (1.0 - full_t / base_t),
            baseline.run.total_counters().messages_sent,
            sparse.run.total_counters().messages_sent,
        );
    }

    // --- Emit the table and the checked-in CSV.
    let headers = [
        "p",
        "config",
        "makespan_s",
        "comm_time_s",
        "bytes_sent",
        "messages_sent",
    ];
    let mut table = TableWriter::new(&headers, csv);
    let mut csv_text = headers.join(",") + "\n";
    for r in &rows {
        let cells = vec![
            r.p.to_string(),
            r.config.to_string(),
            format!("{:.6}", r.makespan),
            format!("{:.6}", r.comm_time),
            r.bytes_sent.to_string(),
            r.messages_sent.to_string(),
        ];
        csv_text.push_str(&cells.join(","));
        csv_text.push('\n');
        table.row(cells);
    }
    table.print();
    std::fs::create_dir_all("results").expect("create results dir");
    std::fs::write("results/ablation_comm.csv", csv_text).expect("write csv");
    eprintln!("  wrote results/ablation_comm.csv ({} rows)", rows.len());

    // Machine-readable summary for the perf gate. Byte/message counts come
    // straight off the deterministic wire model and gate as exact.
    let mut summary = BenchSummary::new("ablation_comm", scale);
    for r in &rows {
        let key = format!("p{}_{}", r.p, r.config);
        summary.metric(&format!("{key}_makespan_s"), r.makespan);
        summary.metric(&format!("{key}_comm_time_s"), r.comm_time);
        summary.metric(&format!("{key}_bytes_sent_exact"), r.bytes_sent as f64);
        summary.metric(&format!("{key}_messages_exact"), r.messages_sent as f64);
    }
    let path = summary.write();
    eprintln!("  wrote {}", path.display());
}
