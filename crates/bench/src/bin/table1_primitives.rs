//! **Table 1 — Collective communication primitive complexities.**
//!
//! The paper states for a cut-through routed hypercube:
//!
//! | primitive            | complexity                  |
//! |----------------------|-----------------------------|
//! | all-to-all broadcast | `O(ts·log p + tw·m·(p−1))`  |
//! | gather               | `O(ts·log p + tw·m·p)`      |
//! | global combine       | `O((ts + tw·m)·log p)`      |
//! | prefix sum           | `O((ts + tw·m)·log p)`      |
//!
//! Collectives here are built from point-to-point messages, so their cost
//! is *measured* (simulated time) and fitted against the stated model. The
//! harness reports the fitted coefficients (which should recover the
//! machine's ts and tw) and the R² of the fit.

use pdc_bench::harness::{csv_flag, least_squares, TableWriter};
use pdc_cgm::{Cluster, MachineConfig};

/// Measure one collective: returns simulated seconds for (p, m_bytes).
fn measure(p: usize, m_bytes: usize, which: &str) -> f64 {
    let cluster = Cluster::new(p);
    let words = (m_bytes / 8).max(1);
    let out = cluster.run(|proc| {
        let payload: Vec<u64> = vec![proc.rank() as u64; words];
        match which {
            "all_gather" => {
                let _ = proc.all_gather(payload);
            }
            "gather" => {
                let _ = proc.gather(0, payload);
            }
            "combine" => {
                let _ = proc.allreduce(payload, |a, b| {
                    a.iter().zip(&b).map(|(x, y)| x + y).collect()
                });
            }
            "prefix_sum" => {
                let _ = proc.scan(payload, |a, b| {
                    a.iter().zip(&b).map(|(x, y)| x + y).collect()
                });
            }
            other => panic!("unknown primitive {other}"),
        }
        proc.clock()
    });
    out.makespan()
}

fn main() {
    let csv = csv_flag();
    let cfg = MachineConfig::default();
    let (ts, tw) = (cfg.cost.network.alpha, cfg.cost.network.beta);
    println!(
        "machine: ts = {:.1} us, tw = {:.3} ns/byte ({} MB/s)",
        ts * 1e6,
        tw * 1e9,
        (1.0 / tw / 1e6).round()
    );

    let procs = [2usize, 4, 8, 16, 32];
    let sizes = [64usize, 1_024, 16_384, 131_072];

    let mut raw = TableWriter::new(&["primitive", "p", "m_bytes", "time_us"], csv);
    // Model terms per primitive: f(p, m) rows of the design matrix.
    type Terms = fn(f64, f64) -> Vec<f64>;
    let models: [(&str, Terms); 4] = [
        ("all_gather", |p, m| vec![p.log2(), m * (p - 1.0)]),
        ("gather", |p, m| vec![p.log2(), m * p]),
        ("combine", |p, m| vec![p.log2(), m * p.log2()]),
        ("prefix_sum", |p, m| vec![p.log2(), m * p.log2()]),
    ];
    let mut fits = TableWriter::new(
        &["primitive", "model", "ts_fit_us", "tw_fit_ns", "r2"],
        csv,
    );
    for (name, terms) in models {
        let mut design = Vec::new();
        let mut ys = Vec::new();
        for &p in &procs {
            for &m in &sizes {
                let t = measure(p, m, name);
                raw.row(vec![
                    name.to_string(),
                    p.to_string(),
                    m.to_string(),
                    format!("{:.2}", t * 1e6),
                ]);
                design.push(terms(p as f64, m as f64));
                ys.push(t);
            }
        }
        let (coeffs, r2) = least_squares(&design, &ys);
        let model = match name {
            "all_gather" => "ts*log p + tw*m*(p-1)",
            "gather" => "ts*log p + tw*m*p",
            _ => "(ts + tw*m)*log p",
        };
        fits.row(vec![
            name.to_string(),
            model.to_string(),
            format!("{:.2}", coeffs[0] * 1e6),
            format!("{:.3}", coeffs[1] * 1e9),
            format!("{r2:.5}"),
        ]);
    }
    println!("\n-- raw measurements --");
    raw.print();
    println!("\n-- model fits (compare ts_fit/tw_fit to the machine constants above) --");
    fits.print();
}
