//! **Ablation — parallelization strategies (Section 3 of the paper).**
//!
//! Runs the same pCLOUDS workload under the four strategies and reports
//! simulated runtime, message counts and bytes. Expected ordering (the
//! paper's argument):
//!
//! * **mixed (delayed)** is fastest — data parallelism while nodes are
//!   large, batched task parallelism for the small-node tail;
//! * **mixed (immediate)** pays more message startups than delayed;
//! * **data parallelism only** wastes startups on tiny nodes;
//! * **concatenated** behaves like data parallelism here (per-level
//!   batching) and shares memory across a level — the paper's reason to
//!   prefer plain data parallelism out-of-core.

use pdc_bench::harness::{csv_flag, run_pclouds, Scale, TableWriter};
use pdc_bench::summary::BenchSummary;
use pdc_dnc::Strategy;

fn main() {
    let scale = Scale::from_env();
    let csv = csv_flag();
    let mut summary = BenchSummary::new("ablation_strategies", scale);
    let n = scale.records(4_800_000);
    let p = 8;
    eprintln!("ablation_strategies: n={n} p={p}");
    let mut table = TableWriter::new(
        &[
            "strategy",
            "runtime_s",
            "messages",
            "comm_mbytes",
            "imbalance",
        ],
        csv,
    );
    for (name, strategy) in [
        ("mixed-delayed", Strategy::Mixed),
        ("mixed-immediate", Strategy::MixedImmediate),
        ("data-parallel", Strategy::DataParallel),
        ("concatenated", Strategy::Concatenated),
    ] {
        let out = run_pclouds(n, p, scale, strategy);
        let totals = out.run.total_counters();
        let key = name.replace('-', "_");
        summary.metric(&format!("{key}_runtime_s"), out.runtime());
        summary.metric(&format!("{key}_messages_exact"), totals.messages_sent as f64);
        summary.metric(&format!("{key}_imbalance"), out.run.imbalance());
        table.row(vec![
            name.to_string(),
            format!("{:.3}", out.runtime()),
            totals.messages_sent.to_string(),
            format!("{:.2}", totals.bytes_sent as f64 / 1e6),
            format!("{:.3}", out.run.imbalance()),
        ]);
        eprintln!("  {name}: {:.3}s, {} msgs", out.runtime(), totals.messages_sent);
    }
    table.print();
    let path = summary.write();
    eprintln!("  wrote {}", path.display());
}
