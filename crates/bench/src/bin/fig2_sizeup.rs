//! **Figure 2 — Sizeup characteristics.**
//!
//! The paper plots speedup against the training-set size (3.6–7.2 million
//! records) for 4, 8 and 16 processors. Expected shape: marginal gains at
//! p = 4 and 8 (speedup already near maximum), clear gains with size at
//! p = 16 — computation grows with the data while the message-startup cost
//! of exchanging count matrices and split points does not.

use pdc_bench::harness::{csv_flag, run_pclouds, Scale, TableWriter};
use pdc_bench::summary::BenchSummary;
use pdc_dnc::Strategy;

fn main() {
    let scale = Scale::from_env();
    let csv = csv_flag();
    let mut summary = BenchSummary::new("fig2_sizeup", scale);
    let paper_sizes: [u64; 4] = [3_600_000, 4_800_000, 6_000_000, 7_200_000];
    let procs = [4usize, 8, 16];

    eprintln!("fig2_sizeup: scale {scale:?}");
    let mut table = TableWriter::new(&["p", "records", "runtime_s", "speedup"], csv);
    for &p in &procs {
        for paper_n in paper_sizes {
            let n = scale.records(paper_n);
            let t1 = run_pclouds(n, 1, scale, Strategy::Mixed).runtime();
            let tp = run_pclouds(n, p, scale, Strategy::Mixed).runtime();
            let speedup = t1 / tp;
            let mk = paper_n / 100_000;
            summary.metric(&format!("runtime_s_n{mk}_p{p}"), tp);
            summary.metric(&format!("speedup_n{mk}_p{p}"), speedup);
            table.row(vec![
                p.to_string(),
                n.to_string(),
                format!("{tp:.3}"),
                format!("{speedup:.2}"),
            ]);
            eprintln!("  p={p} n={n}: speedup={speedup:.2}");
        }
    }
    table.print();
    let path = summary.write();
    eprintln!("  wrote {}", path.display());
}
