//! **Figure — the serving path: compiled layouts at production throughput.**
//!
//! Trains one tree on the fig-1 workload, then ablates the serving harness
//! over **layout × batch size × engine on/off** and writes
//! `results/fig_serving.csv`. Each cell deploys the compiled model by
//! broadcast, streams the request shards from every rank's disk, and
//! measures sustained records/sec plus p50/p99/p999 virtual-clock batch
//! latency (see [`pdc_serve::serve`]).
//!
//! Expected shape, asserted below as the regression contract:
//!
//! * **Predictions are byte-identical** across all three layouts at every
//!   cell — compilation changes cost, never answers.
//! * **Flat beats pointer** at every batch size and engine setting: the
//!   flat array drops the dependent pointer-chase charge per visited node
//!   and its 16-byte nodes keep the working set inside the CPU cache.
//! * The **predicated** layout pays exactly `depth` padded steps per
//!   record — cheapest per step, but the padding makes it a genuine
//!   trade-off rather than a free win; the figure reports where it lands.

use pdc_bench::harness::{csv_flag, machine_config, run_pclouds, Scale, TableWriter};
use pdc_bench::summary::BenchSummary;
use pdc_cgm::Cluster;
use pdc_datagen::GeneratorConfig;
use pdc_dnc::Strategy;
use pdc_pario::{BackendKind, DiskFarm, EngineConfig, ReplacementPolicy};
use pdc_serve::{serve, stage_requests, Layout, ServeConfig, ServeReport, ALL_LAYOUTS};

/// One CSV row of the ablation.
struct Row {
    engine: &'static str,
    batch: usize,
    layout: Layout,
    report: ServeReport,
    /// Throughput relative to the pointer baseline of the same
    /// (engine, batch) cell; 1.0 for the baseline itself.
    speedup_vs_pointer: f64,
    /// Predictions byte-identical to the pointer baseline of the cell.
    identical: bool,
}

fn main() {
    let scale = Scale::from_env();
    let csv = csv_flag();
    let p = 4;
    let train_n = scale.records(600_000);
    let requests = scale.records(2_400_000);
    eprintln!("fig_serving: train_n={train_n} requests={requests} p={p}");

    // --- Train the model once; serving ablates the scoring side only.
    let trained = run_pclouds(train_n, p, scale, Strategy::Mixed);
    let tree = trained.tree;
    assert!(
        tree.depth() >= 1,
        "trained tree must have at least one split for the ablation to be meaningful"
    );
    eprintln!(
        "  trained tree: {} nodes, depth {} ({:.3}s virtual build time)",
        tree.num_nodes(),
        tree.depth(),
        trained.run.makespan()
    );

    let cluster = Cluster::with_config(p, machine_config(scale));
    // Requests come from a different generator seed than the training data:
    // the serving fleet scores traffic it has never seen.
    let request_gen = GeneratorConfig {
        seed: 0x5e21_e5ed,
        ..GeneratorConfig::default()
    };
    let engines: [(&'static str, EngineConfig); 2] = [
        ("off", EngineConfig::disabled()),
        (
            "on",
            EngineConfig {
                page_bytes: 16 * 1024,
                budget_bytes: 32 * 16 * 1024,
                policy: ReplacementPolicy::Lru,
                prefetch: true,
            },
        ),
    ];
    let batches = [256usize, 1_024, 4_096];

    let mut rows: Vec<Row> = Vec::new();
    for (engine_name, engine) in &engines {
        for &batch in &batches {
            // One report per layout. Every layout gets a freshly staged farm
            // so no run inherits a warm buffer pool from the previous one.
            let mut cell: Vec<(Layout, ServeReport)> = Vec::new();
            for layout in ALL_LAYOUTS {
                let farm = DiskFarm::with_engine(p, BackendKind::InMemory, engine);
                stage_requests(&farm, requests, request_gen);
                // Exact latencies ride along to validate the histogram path:
                // every reported percentile must agree with the exact
                // nearest-rank answer within the bucket layout's relative
                // error (see `pdc_cgm::hist`).
                let serve_cfg = ServeConfig::new(layout, batch).with_exact_latencies();
                let report = serve(&cluster, &farm, &tree, &serve_cfg);
                assert_eq!(report.records, requests);
                let exact = report
                    .latency_exact
                    .expect("exact latencies were requested");
                let tol = serve_cfg.hist.rel_error();
                for (which, approx, e) in [
                    ("p50", report.latency.p50, exact.p50),
                    ("p99", report.latency.p99, exact.p99),
                    ("p999", report.latency.p999, exact.p999),
                ] {
                    assert!(
                        approx >= e - 1e-15 && approx <= e * (1.0 + tol) + 1e-15,
                        "engine={engine_name} batch={batch} {}: histogram {which} \
                         {approx} strays from exact {e} beyond relative error {tol}",
                        layout.name()
                    );
                }
                assert_eq!(report.latency.max, exact.max);
                cell.push((layout, report));
            }
            let pointer = cell
                .iter()
                .find(|(l, _)| *l == Layout::Pointer)
                .map(|(_, r)| (r.throughput_rps, r.predictions.clone()))
                .expect("pointer baseline in every cell");
            for (layout, report) in cell {
                let identical = report.predictions == pointer.1;
                let speedup = report.throughput_rps / pointer.0;
                eprintln!(
                    "  engine={engine_name} batch={batch} {:>9}: {:>12.0} rps \
                     ({speedup:.2}x pointer), p99 {:.3} ms",
                    layout.name(),
                    report.throughput_rps,
                    report.latency.p99 * 1e3,
                );
                assert!(
                    identical,
                    "engine={engine_name} batch={batch}: {} predictions must be \
                     byte-identical to the pointer tree",
                    layout.name()
                );
                if layout == Layout::Flat {
                    assert!(
                        speedup > 1.0,
                        "engine={engine_name} batch={batch}: flat must serve strictly \
                         more records/sec than pointer ({} !> {})",
                        report.throughput_rps,
                        pointer.0
                    );
                }
                rows.push(Row {
                    engine: engine_name,
                    batch,
                    layout,
                    report,
                    speedup_vs_pointer: speedup,
                    identical,
                });
            }
        }
    }

    // --- Emit the table and the checked-in CSV.
    let headers = [
        "engine",
        "batch",
        "layout",
        "records",
        "model_nodes",
        "model_bytes",
        "deploy_s",
        "makespan_s",
        "throughput_rps",
        "speedup_vs_pointer",
        "p50_ms",
        "p99_ms",
        "p999_ms",
        "identical",
    ];
    let mut table = TableWriter::new(&headers, csv);
    let mut csv_text = headers.join(",") + "\n";
    for r in &rows {
        let cells = vec![
            r.engine.to_string(),
            r.batch.to_string(),
            r.layout.name().to_string(),
            r.report.records.to_string(),
            r.report.model_nodes.to_string(),
            r.report.model_bytes.to_string(),
            format!("{:.6}", r.report.deploy_seconds),
            format!("{:.6}", r.report.makespan),
            format!("{:.1}", r.report.throughput_rps),
            format!("{:.4}", r.speedup_vs_pointer),
            format!("{:.4}", r.report.latency.p50 * 1e3),
            format!("{:.4}", r.report.latency.p99 * 1e3),
            format!("{:.4}", r.report.latency.p999 * 1e3),
            if r.identical { "yes" } else { "no" }.to_string(),
        ];
        csv_text.push_str(&cells.join(","));
        csv_text.push('\n');
        table.row(cells);
    }
    table.print();
    std::fs::create_dir_all("results").expect("create results dir");
    std::fs::write("results/fig_serving.csv", csv_text).expect("write csv");
    eprintln!("  wrote results/fig_serving.csv ({} rows)", rows.len());

    // Machine-readable summary for the perf gate: one metric per
    // (engine, batch, layout) cell plus the exact correctness invariants.
    let mut summary = BenchSummary::new("fig_serving", scale);
    summary.metric("records_exact", requests as f64);
    for r in &rows {
        let key = format!("e{}_b{}_{}", r.engine, r.batch, r.layout.name());
        summary.metric(&format!("{key}_rps"), r.report.throughput_rps);
        summary.metric(&format!("{key}_p99_ms"), r.report.latency.p99 * 1e3);
        summary.metric(
            &format!("{key}_identical_exact"),
            f64::from(u8::from(r.identical)),
        );
        if r.layout != Layout::Pointer {
            summary.metric(&format!("{key}_speedup"), r.speedup_vs_pointer);
        }
    }
    let path = summary.write();
    eprintln!("  wrote {}", path.display());
}
