//! **Extension — pCLOUDS vs parallel SPRINT (ScalParC-style).**
//!
//! The paper positions pCLOUDS against SPRINT-family classifiers: exact
//! pre-sorted splits, but memory-resident structures that grow with the
//! training set ("the use of memory-resident hash tables ... limits its
//! scalability"). This harness trains both on the same data and reports
//! simulated runtime, accuracy and — the point of CLOUDS — the resident
//! memory each needs per processor.

use pdc_baselines::build_tree_psprint;
use pdc_bench::harness::{csv_flag, experiment_config, machine_config, Scale, TableWriter};
use pdc_cgm::Cluster;
use pdc_clouds::{accuracy, holdout_pair};
use pdc_datagen::ClassifyFn;
use pdc_dnc::Strategy;
use pdc_pario::DiskFarm;
use pdc_pclouds::{load_dataset, train};

fn main() {
    let scale = Scale::from_env();
    let csv = csv_flag();
    // Parallel SPRINT holds everything in memory; keep the comparison at a
    // size both can run.
    let n = scale.records(1_200_000) as usize;
    let (records, test) = holdout_pair(ClassifyFn::F2, n, 20_000, 0.0);
    eprintln!("compare_psprint: n={n}");
    let mut table = TableWriter::new(
        &[
            "classifier",
            "p",
            "runtime_s",
            "accuracy",
            "resident_mb_per_proc",
        ],
        csv,
    );
    for p in [4usize, 8, 16] {
        // pCLOUDS: out-of-core, bounded memory.
        let cfg = experiment_config(n as u64, scale);
        let farm = DiskFarm::in_memory(p);
        let root = load_dataset(&farm, &records, cfg.clouds.sample_size, cfg.clouds.sample_seed);
        let cluster = Cluster::with_config(p, machine_config(scale));
        let out = train(&cluster, &farm, &root, &cfg, Strategy::Mixed);
        table.row(vec![
            "pclouds".into(),
            p.to_string(),
            format!("{:.3}", out.runtime()),
            format!("{:.4}", accuracy(&out.tree, &test)),
            format!("{:.2}", cfg.memory_limit_bytes as f64 / 1e6),
        ]);

        // Parallel SPRINT: in-core, replicated maps + distributed lists.
        let cfg2 = experiment_config(n as u64, scale);
        let cluster = Cluster::with_config(p, machine_config(scale));
        let run = cluster.run(|proc| build_tree_psprint(proc, &records, &cfg2.clouds));
        let (tree, stats) = &run.results[0];
        let lists_bytes = stats.list_entries * 16; // value + rid + padding
        table.row(vec![
            "psprint".into(),
            p.to_string(),
            format!("{:.3}", run.makespan()),
            format!("{:.4}", accuracy(tree, &test)),
            format!(
                "{:.2}",
                (stats.replicated_bytes + lists_bytes) as f64 / 1e6
            ),
        ]);
    }
    table.print();
}
