//! **Ablation — bagged ensembles on subgroups: accuracy, makespan and
//! memory budget across subgroup width × ensemble size.**
//!
//! Two parts, both asserting their contract in-bin:
//!
//! 1. **Accuracy.** For every SLIQ generator function, train one tree and
//!    an 8-tree bagged ensemble on noisy data and score both against a
//!    disjoint noise-free holdout ([`pdc_clouds::holdout_pair`]). The
//!    ensemble must strictly beat the single tree on at least 8 of the 10
//!    functions — bagging has to earn its extra compute.
//! 2. **Scheduling sweep.** Subgroup width w ∈ {1, 2, 4} × ensemble size
//!    B ∈ {1, 4, 8} on p = 8 ranks, with the per-rank memory budget set to
//!    exactly the width's predicted residency
//!    ([`pdc_ensemble::predicted_resident_bytes`]) and gauges on. Reports
//!    makespan and the gauge-measured peak resident bytes per rank, and
//!    asserts the measured peak stays within the budget in **every** cell
//!    — the budget is a real bound, not a suggestion.
//!
//! Writes `results/ablation_ensemble.csv` (section column distinguishes
//! accuracy rows from sweep rows) and a `BenchSummary` for the perf gate.

use pdc_bench::harness::{csv_flag, experiment_config, machine_config, Scale, TableWriter};
use pdc_bench::summary::BenchSummary;
use pdc_cgm::Cluster;
use pdc_clouds::{accuracy_of, holdout_pair};
use pdc_datagen::{generate, GeneratorConfig, ALL_FUNCTIONS};
use pdc_ensemble::{predicted_resident_bytes, train_ensemble, train_ensemble_on, EnsembleConfig};
use pdc_pclouds::train_in_memory;

struct Row {
    section: &'static str,
    function: String,
    width: String,
    trees: String,
    accuracy_single: String,
    accuracy_ensemble: String,
    makespan_s: String,
    peak_resident_bytes: String,
    budget_bytes: String,
}

fn main() {
    let scale = Scale::from_env();
    let csv = csv_flag();
    let mut summary = BenchSummary::new("ablation_ensemble", scale);
    let mut rows: Vec<Row> = Vec::new();

    // --- Part 1: ensemble vs single tree across every SLIQ function. ---
    // Fixed-size and scale-independent so the win-count contract is the
    // same one the ensemble test suite enforces.
    let (n_train, n_test, noise) = (2_000usize, 2_000usize, 0.10f64);
    let mut wins = 0u32;
    for (i, f) in ALL_FUNCTIONS.iter().enumerate() {
        let (train, holdout) = holdout_pair(*f, n_train, n_test, noise);
        let mut cfg = EnsembleConfig::paper_scaled(n_train as u64);
        cfg.base.clouds.q_root = 100;
        cfg.base.clouds.sample_size = 300;
        cfg.trees = 8;
        let single = train_in_memory(&train, 4, &cfg.base);
        let ens = train_ensemble(&train, 8, &cfg);
        let acc_s = accuracy_of(|r| single.tree.predict(r), &holdout);
        let acc_e = accuracy_of(|r| ens.model.predict(r), &holdout);
        if acc_e > acc_s {
            wins += 1;
        }
        summary.metric(&format!("f{}_accuracy_single", i + 1), acc_s);
        summary.metric(&format!("f{}_accuracy_ensemble", i + 1), acc_e);
        rows.push(Row {
            section: "accuracy",
            function: format!("f{}", i + 1),
            width: String::new(),
            trees: "8".into(),
            accuracy_single: format!("{acc_s:.4}"),
            accuracy_ensemble: format!("{acc_e:.4}"),
            makespan_s: String::new(),
            peak_resident_bytes: String::new(),
            budget_bytes: String::new(),
        });
    }
    eprintln!("ablation_ensemble: ensemble beats single tree on {wins}/10 functions");
    assert!(
        wins >= 8,
        "ensemble must strictly beat the single tree on >= 8/10 SLIQ functions, got {wins}"
    );
    summary.metric("accuracy_wins_exact", wins as f64);

    // --- Part 2: subgroup width x ensemble size under a real budget. ---
    let n = scale.records(400_000) as usize;
    let p = 8usize;
    eprintln!("ablation_ensemble: sweep on n={n}, p={p}");
    let records = generate(n, GeneratorConfig::default());
    for width in [1usize, 2, 4] {
        for trees in [1usize, 4, 8] {
            let mut cfg = EnsembleConfig::paper_scaled(n as u64);
            cfg.base = experiment_config(n as u64, scale);
            cfg.trees = trees;
            cfg.subgroup_width = width;
            // The budget is exactly this width's predicted residency: any
            // cell whose measured peak exceeds it fails the run.
            let budget = predicted_resident_bytes(n, width, &cfg);
            cfg.memory_budget_bytes = budget;
            let mut machine = machine_config(scale);
            machine.gauges = true;
            let out = train_ensemble_on(&Cluster::with_config(p, machine), &records, &cfg);
            let peak = out
                .peak_resident_bytes()
                .into_iter()
                .fold(0.0f64, f64::max);
            assert!(
                peak <= budget as f64,
                "w={width} B={trees}: measured peak {peak} bytes exceeds budget {budget}"
            );
            let makespan = out.runtime();
            let key = format!("w{width}_b{trees}");
            summary.metric(&format!("{key}_makespan"), makespan);
            summary.metric(&format!("{key}_peak_resident_bytes"), peak);
            rows.push(Row {
                section: "sweep",
                function: String::new(),
                width: width.to_string(),
                trees: trees.to_string(),
                accuracy_single: String::new(),
                accuracy_ensemble: String::new(),
                makespan_s: format!("{makespan:.6}"),
                peak_resident_bytes: format!("{peak:.0}"),
                budget_bytes: budget.to_string(),
            });
            eprintln!(
                "  w={width} B={trees}: makespan {makespan:.3}s, \
                 peak {peak:.0}/{budget} bytes"
            );
        }
    }

    // --- Emit the table and the checked-in CSV. ---
    let headers = [
        "section",
        "function",
        "width",
        "trees",
        "accuracy_single",
        "accuracy_ensemble",
        "makespan_s",
        "peak_resident_bytes",
        "budget_bytes",
    ];
    let mut table = TableWriter::new(&headers, csv);
    let mut csv_text = headers.join(",") + "\n";
    for r in &rows {
        let cells = vec![
            r.section.to_string(),
            r.function.clone(),
            r.width.clone(),
            r.trees.clone(),
            r.accuracy_single.clone(),
            r.accuracy_ensemble.clone(),
            r.makespan_s.clone(),
            r.peak_resident_bytes.clone(),
            r.budget_bytes.clone(),
        ];
        csv_text.push_str(&cells.join(","));
        csv_text.push('\n');
        table.row(cells);
    }
    table.print();
    std::fs::create_dir_all("results").expect("create results dir");
    std::fs::write("results/ablation_ensemble.csv", csv_text).expect("write csv");
    eprintln!("  wrote results/ablation_ensemble.csv ({} rows)", rows.len());
    let path = summary.write();
    eprintln!("  wrote {}", path.display());
}
