//! **Machine-readable perf-regression gate.**
//!
//! Re-runs the quick-scale benchmark suite (sibling binaries of this
//! executable, `PCLOUDS_SCALE=quick`), then compares each binary's fresh
//! `results/BENCH_<bin>.json` summary against the checked-in baseline in
//! `results/baselines/` with per-metric tolerance bands (see
//! [`pdc_bench::gate`]). Exits nonzero on any regression, so CI can gate
//! merges on it directly.
//!
//! ```text
//! perf_gate [--no-run] [--bins a,b,c] [--tol 0.25] [--abs-tol 1e-6] [--baselines DIR]
//! ```
//!
//! * `--no-run` — skip re-running the binaries; compare whatever
//!   summaries are already in `results/` (useful locally after a manual
//!   quick-scale run, and for testing the gate itself).
//! * `--bins` — comma-separated gated set; default
//!   `fig_serving,ablation_cache,ablation_comm,ablation_ensemble,`
//!   `fig1_speedup,ablation_faults` (the fastest bins that still cover
//!   serving, caching, communication, ensemble scheduling, end-to-end
//!   speedup, and fault-injection overheads).
//! * `--tol` — relative band for non-`_exact` metrics (default 0.25).
//! * `--abs-tol` — absolute floor of the band (default 1e-6), so a 0.0
//!   baseline does not become a bitwise gate; see [`pdc_bench::gate`].
//! * `--baselines` — baseline directory (default `results/baselines`).
//!
//! To re-baseline intentionally: run the gated bins at quick scale, copy
//! the fresh `results/BENCH_*.json` into `results/baselines/`, and commit
//! with a sentence saying *why* the numbers moved.

use std::path::{Path, PathBuf};
use std::process::Command;

use pdc_bench::gate::{compare_with, DEFAULT_ABS_TOL, DEFAULT_REL_TOL};
use pdc_bench::summary::BenchSummary;

const DEFAULT_BINS: &[&str] = &[
    "fig_serving",
    "ablation_cache",
    "ablation_comm",
    "ablation_ensemble",
    "fig1_speedup",
    "ablation_faults",
];

struct Args {
    no_run: bool,
    bins: Vec<String>,
    tol: f64,
    abs_tol: f64,
    baselines: PathBuf,
}

fn parse_args() -> Args {
    let mut args = Args {
        no_run: false,
        bins: DEFAULT_BINS.iter().map(|s| s.to_string()).collect(),
        tol: DEFAULT_REL_TOL,
        abs_tol: DEFAULT_ABS_TOL,
        baselines: PathBuf::from("results/baselines"),
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--no-run" => args.no_run = true,
            "--bins" => {
                let v = it.next().expect("--bins needs a comma-separated list");
                args.bins = v.split(',').map(|s| s.trim().to_string()).collect();
            }
            "--tol" => {
                args.tol = it
                    .next()
                    .expect("--tol needs a value")
                    .parse()
                    .expect("--tol must be a number");
            }
            "--abs-tol" => {
                args.abs_tol = it
                    .next()
                    .expect("--abs-tol needs a value")
                    .parse()
                    .expect("--abs-tol must be a number");
            }
            "--baselines" => {
                args.baselines = PathBuf::from(it.next().expect("--baselines needs a path"));
            }
            other => panic!("unknown argument {other:?}"),
        }
    }
    args
}

/// Run a sibling benchmark binary at quick scale, inheriting stderr so its
/// progress shows up in the gate log.
fn run_sibling(bin: &str) {
    let me = std::env::current_exe().expect("current_exe");
    let dir = me.parent().expect("binary has a parent directory");
    let path = dir.join(bin);
    assert!(
        path.exists(),
        "{} not found next to perf_gate — build the full bench suite first \
         (cargo build --release -p pdc-bench --bins)",
        path.display()
    );
    eprintln!("perf_gate: running {bin} (PCLOUDS_SCALE=quick)");
    let status = Command::new(&path)
        .env("PCLOUDS_SCALE", "quick")
        .status()
        .unwrap_or_else(|e| panic!("spawn {}: {e}", path.display()));
    assert!(status.success(), "{bin} exited with {status}");
}

fn main() {
    let args = parse_args();
    if !args.no_run {
        for bin in &args.bins {
            run_sibling(bin);
        }
    }

    let mut violations = Vec::new();
    let mut compared = 0usize;
    for bin in &args.bins {
        let base_path = BenchSummary::path_in(&args.baselines, bin);
        let cur_path = BenchSummary::path_in(Path::new("results"), bin);
        let baseline = match BenchSummary::read(&base_path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!(
                    "perf_gate: FAIL {bin}: no readable baseline ({e}); \
                     generate one and commit it under {}",
                    args.baselines.display()
                );
                std::process::exit(2);
            }
        };
        let current = match BenchSummary::read(&cur_path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("perf_gate: FAIL {bin}: no readable current summary ({e})");
                std::process::exit(2);
            }
        };
        let v = compare_with(&baseline, &current, args.tol, args.abs_tol);
        compared += baseline.metrics.len();
        if v.is_empty() {
            eprintln!(
                "perf_gate: PASS {bin} ({} metrics within ±{:.0}%)",
                baseline.metrics.len(),
                args.tol * 100.0
            );
        }
        violations.extend(v);
    }

    if violations.is_empty() {
        eprintln!("perf_gate: PASS — {compared} metrics across {} bin(s)", args.bins.len());
        return;
    }
    eprintln!("perf_gate: FAIL — {} violation(s):", violations.len());
    for v in &violations {
        eprintln!("  {}", v.render());
    }
    eprintln!(
        "perf_gate: if the change is intentional, re-baseline: run the gated \
         bins with PCLOUDS_SCALE=quick and copy results/BENCH_*.json into {}",
        args.baselines.display()
    );
    std::process::exit(1);
}
