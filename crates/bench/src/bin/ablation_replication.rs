//! **Ablation — attribute-based vs interval-based boundary evaluation
//! (§5.1.1).**
//!
//! The paper implements the replication method with the attribute-based
//! approach but notes that "it is possible for some processors to idle and
//! hence can lead to poor load balancing"; the interval-based approach
//! distributes every attribute's intervals across all processors. This
//! harness compares the two at processor counts straddling the attribute
//! count (9): below it the approaches are similar; above it the
//! attribute-based owners become the bottleneck of the derive phase.

use pdc_bench::harness::{csv_flag, experiment_config, machine_config, Scale, TableWriter};
use pdc_bench::summary::BenchSummary;
use pdc_cgm::Cluster;
use pdc_datagen::{GeneratorConfig, RecordStream};
use pdc_dnc::Strategy;
use pdc_pario::DiskFarm;
use pdc_pclouds::{load_dataset_stream, train, BoundaryEval};

fn main() {
    let scale = Scale::from_env();
    let csv = csv_flag();
    let n = scale.records(3_600_000);
    eprintln!("ablation_replication: n={n}");
    let mut summary = BenchSummary::new("ablation_replication", scale);
    let mut table = TableWriter::new(
        &[
            "approach",
            "p",
            "runtime_s",
            "derive_max_s",
            "derive_min_s",
            "messages",
        ],
        csv,
    );
    for p in [4usize, 8, 16, 32] {
        for (name, approach) in [
            ("attribute", BoundaryEval::AttributeBased),
            ("interval", BoundaryEval::IntervalBased),
        ] {
            let mut cfg = experiment_config(n, scale);
            cfg.boundary_eval = approach;
            let farm = DiskFarm::in_memory(p);
            let stream = RecordStream::new(GeneratorConfig::default()).take(n as usize);
            let root = load_dataset_stream(
                &farm,
                stream,
                cfg.clouds.sample_size,
                cfg.clouds.sample_seed,
            );
            let cluster = Cluster::with_config(p, machine_config(scale));
            let out = train(&cluster, &farm, &root, &cfg, Strategy::Mixed);
            let derive: Vec<f64> = out.metrics.iter().map(|m| m.time_derive).collect();
            summary.metric(&format!("{name}_p{p}_runtime_s"), out.runtime());
            summary.metric(
                &format!("{name}_p{p}_derive_max_s"),
                derive.iter().cloned().fold(0.0f64, f64::max),
            );
            table.row(vec![
                name.to_string(),
                p.to_string(),
                format!("{:.3}", out.runtime()),
                format!("{:.3}", derive.iter().cloned().fold(0.0f64, f64::max)),
                format!("{:.3}", derive.iter().cloned().fold(f64::MAX, f64::min)),
                out.run.total_counters().messages_sent.to_string(),
            ]);
        }
    }
    table.print();
    let path = summary.write();
    eprintln!("  wrote {}", path.display());
}
