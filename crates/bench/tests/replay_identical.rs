//! Identity-override replay must reproduce every harness configuration's
//! virtual times bit for bit: plain runs, fault injection, the
//! asynchronous engine, the full telemetry stack, and ensemble training on
//! machine subgroups. This is the keystone contract of the what-if
//! subsystem — if the identity replay drifts, every hypothetical predicted
//! from the event graph is untrustworthy.

use pdc_bench::harness::{
    machine_config, run_pclouds, run_pclouds_recorded, run_pclouds_recorded_full, Scale,
};
use pdc_cgm::replay::{identity_check, replay, CostOverride};
use pdc_cgm::{Cluster, EventGraph, FaultPlan};
use pdc_dnc::Strategy;
use pdc_ensemble::{train_ensemble_on, EnsembleConfig};
use pdc_pario::{EngineConfig, ReplacementPolicy};

const N: u64 = 20_000;
const P: usize = 4;

fn faulty_plan() -> FaultPlan {
    let mut plan = FaultPlan::with_seed(42);
    plan.link.drop_prob = 0.01;
    plan.link.delay_prob = 0.02;
    plan.disk.read_error_prob = 0.01;
    plan
}

#[test]
fn recording_does_not_perturb_the_run() {
    let plain = run_pclouds(N, P, Scale::Quick, Strategy::Mixed);
    let recorded = run_pclouds_recorded(N, P, Scale::Quick, Strategy::Mixed);
    assert_eq!(plain.tree, recorded.tree);
    for (a, b) in plain.run.stats.iter().zip(&recorded.run.stats) {
        assert_eq!(
            a.finish_time.to_bits(),
            b.finish_time.to_bits(),
            "rank {}: recording perturbed the virtual clock",
            a.rank
        );
        assert_eq!(a.counters, b.counters, "rank {}: counters diverged", a.rank);
    }
}

#[test]
fn identity_replay_bit_exact_plain() {
    let out = run_pclouds_recorded(N, P, Scale::Quick, Strategy::Mixed);
    identity_check(&EventGraph::from_stats(&out.run.stats));
}

#[test]
fn identity_replay_bit_exact_with_faults() {
    let out = run_pclouds_recorded_full(
        N,
        P,
        Scale::Quick,
        Strategy::Mixed,
        faulty_plan(),
        &EngineConfig::disabled(),
        false,
    );
    identity_check(&EventGraph::from_stats(&out.run.stats));
}

#[test]
fn identity_replay_bit_exact_with_engine() {
    let engine = EngineConfig::new(512 * 1024, ReplacementPolicy::Lru, true);
    let out = run_pclouds_recorded_full(
        N,
        P,
        Scale::Quick,
        Strategy::Mixed,
        FaultPlan::default(),
        &engine,
        false,
    );
    identity_check(&EventGraph::from_stats(&out.run.stats));
}

#[test]
fn identity_replay_bit_exact_with_telemetry_and_everything() {
    let engine = EngineConfig::new(512 * 1024, ReplacementPolicy::Lru, true);
    let out = run_pclouds_recorded_full(
        N,
        P,
        Scale::Quick,
        Strategy::Mixed,
        faulty_plan(),
        &engine,
        true,
    );
    identity_check(&EventGraph::from_stats(&out.run.stats));
}

#[test]
fn identity_replay_bit_exact_ensemble_subgroups() {
    let records = pdc_datagen::generate(4_000, pdc_datagen::GeneratorConfig::default());
    let mut cfg = EnsembleConfig::paper_scaled(4_000);
    cfg.base.clouds.q_root = 100;
    cfg.base.clouds.sample_size = 300;
    cfg.trees = 4;
    let mut machine = machine_config(Scale::Quick);
    machine.spans = true;
    machine.record = true;
    let out = train_ensemble_on(&Cluster::with_config(8, machine), &records, &cfg);
    identity_check(&EventGraph::from_stats(&out.run.stats));
}

#[test]
fn replay_overrides_behave_on_a_real_training_run() {
    let out = run_pclouds_recorded(N, P, Scale::Quick, Strategy::Mixed);
    let graph = EventGraph::from_stats(&out.run.stats);
    let base = graph.makespan();

    // Infinite link bandwidth: the run can only get faster, and must save
    // at least every recorded transfer second on the slowest rank.
    let mut inf_bw = CostOverride::identity();
    inf_bw.comm_transfer = 0.0;
    let predicted = replay(&graph, &inf_bw);
    assert!(predicted.makespan() <= base);

    // A per-phase speedup of the attribute scan shortens the run: the scan
    // phase is a real part of every training level.
    let scan_fast = CostOverride::identity().with_span("pclouds.*", 0.5);
    assert!(replay(&graph, &scan_fast).makespan() < base);

    // The critical-path verdict renders for downstream reports.
    let line = predicted.critical.render(predicted.makespan());
    assert!(line.contains("verdict:"), "{line}");
}
