//! The profiled harness run (trace + spans + gauges, engine on) must
//! reproduce the plain engine run's virtual times bit for bit, its exports
//! must be byte-deterministic across identical runs, and the per-rank time
//! identity must survive faults and the asynchronous engine composed.

use pdc_bench::harness::{
    run_pclouds_engine, run_pclouds_faulty_engine, run_pclouds_profiled, Scale,
};
use pdc_cgm::{chrome_trace_json, gauges_csv, metrics_csv, metrics_jsonl, FaultPlan};
use pdc_dnc::Strategy;
use pdc_pario::{EngineConfig, ReplacementPolicy};

fn engine() -> EngineConfig {
    EngineConfig::new(512 * 1024, ReplacementPolicy::Lru, true)
}

#[test]
fn profiled_run_is_bit_identical_to_plain() {
    let n = 20_000;
    let p = 4;
    let plain = run_pclouds_engine(n, p, Scale::Quick, Strategy::Mixed, &engine());
    let profiled = run_pclouds_profiled(n, p, Scale::Quick, Strategy::Mixed, &engine());
    assert_eq!(plain.tree, profiled.tree);
    for (a, b) in plain.run.stats.iter().zip(&profiled.run.stats) {
        assert!(a.gauges.is_empty() && a.spans.is_empty());
        assert!(!b.gauges.is_empty() && !b.spans.is_empty());
        assert_eq!(
            a.finish_time.to_bits(),
            b.finish_time.to_bits(),
            "rank {}: profiling perturbed the virtual clock",
            a.rank
        );
        assert_eq!(a.counters, b.counters, "rank {}: counters diverged", a.rank);
    }
}

#[test]
fn profiled_exports_are_byte_identical_across_runs() {
    let n = 20_000;
    let p = 4;
    let a = run_pclouds_profiled(n, p, Scale::Quick, Strategy::Mixed, &engine());
    let b = run_pclouds_profiled(n, p, Scale::Quick, Strategy::Mixed, &engine());
    assert_eq!(
        chrome_trace_json(&a.run.stats),
        chrome_trace_json(&b.run.stats),
        "chrome trace diverged between identical runs"
    );
    assert_eq!(
        metrics_jsonl(&a.run.stats),
        metrics_jsonl(&b.run.stats),
        "metrics JSONL diverged between identical runs"
    );
    assert_eq!(
        metrics_csv(&a.run.stats),
        metrics_csv(&b.run.stats),
        "metrics CSV diverged between identical runs"
    );
    assert_eq!(
        gauges_csv(&a.run.stats),
        gauges_csv(&b.run.stats),
        "gauges CSV diverged between identical runs"
    );
}

#[test]
fn faults_and_engine_compose_with_the_accounting_identity() {
    // Every virtual second still lands in exactly one bucket when fault
    // injection and the asynchronous engine are both on.
    let n = 20_000;
    let p = 4;
    let mut faults = FaultPlan::with_seed(42);
    faults.link.drop_prob = 0.02;
    faults.link.delay_prob = 0.02;
    faults.disk.read_error_prob = 0.02;
    faults.skew = vec![1.0, 1.0, 1.0, 1.4];
    assert!(!faults.is_inert());
    let out = run_pclouds_faulty_engine(
        n,
        p,
        Scale::Quick,
        Strategy::Mixed,
        faults,
        true,
        Some(40),
        &engine(),
    );
    let mut fault_seconds = 0.0;
    for s in &out.run.stats {
        let c = &s.counters;
        let sum = c.compute_time
            + c.comm_time
            + c.io_time
            + c.fault_time
            + c.io_stall_time
            + s.idle_time();
        assert!(
            (sum - s.finish_time).abs() < 1e-9,
            "rank {}: accounting identity broke with faults + engine",
            s.rank
        );
        fault_seconds += c.fault_time;
    }
    assert!(fault_seconds > 0.0, "the fault plan never fired");
}
