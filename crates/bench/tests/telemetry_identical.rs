//! Regression contract: the whole observability stack — spans, event
//! trace, gauges, latency histograms, windowed telemetry, SLO monitors —
//! is **pure observation**. Turning all of it on at once must leave every
//! rank's finish time bit-identical and every counter identical, at both
//! the serving layer and the training (pclouds) layer.

use pdc_bench::harness::{run_pclouds_engine, run_pclouds_profiled, Scale};
use pdc_cgm::Cluster;
use pdc_clouds::{DecisionTree, Splitter};
use pdc_datagen::GeneratorConfig;
use pdc_dnc::Strategy;
use pdc_pario::{BackendKind, DiskFarm, EngineConfig, ReplacementPolicy};
use pdc_serve::{serve, stage_requests, Layout, ServeConfig, SloSpec, TelemetryConfig};

fn tree() -> DecisionTree {
    let mut t = DecisionTree::single_leaf(vec![5, 5]);
    let (l, _) = t.split_leaf(
        0,
        Splitter::Numeric {
            attr: 0,
            threshold: 80_000.0,
        },
        vec![5, 0],
        vec![0, 5],
    );
    t.split_leaf(
        l,
        Splitter::Categorical {
            attr: 0,
            left_values: 0b0_0011,
        },
        vec![2, 1],
        vec![1, 2],
    );
    t
}

#[test]
fn serving_run_is_bit_identical_with_full_telemetry_on() {
    let p = 3;
    let tree = tree();
    let engine = EngineConfig {
        page_bytes: 16 * 1024,
        budget_bytes: 8 * 16 * 1024,
        policy: ReplacementPolicy::Lru,
        prefetch: true,
    };
    let stage = || {
        let farm = DiskFarm::with_engine(p, BackendKind::InMemory, &engine);
        stage_requests(&farm, 3_000, GeneratorConfig::default());
        farm
    };

    // Baseline: everything off.
    let plain = Cluster::new(p);
    let off = serve(&plain, &stage(), &tree, &ServeConfig::new(Layout::Flat, 200));

    // Everything on: spans + event trace + gauges at the machine level,
    // histogram + exact validation + tumbling windows + SLO at the
    // harness level.
    let mut machine = pdc_cgm::MachineConfig::default();
    machine.spans = true;
    machine.trace = true;
    machine.gauges = true;
    let observed = Cluster::with_config(p, machine);
    let telemetry = TelemetryConfig::new((off.makespan / 10.0).max(1e-6))
        .with_slo(SloSpec::p99(off.latency.p99 * 2.0));
    let cfg = ServeConfig::new(Layout::Flat, 200)
        .with_telemetry(telemetry)
        .with_exact_latencies();
    let on = serve(&observed, &stage(), &tree, &cfg);

    assert_eq!(on.predictions, off.predictions, "answers must not change");
    assert_eq!(on.makespan.to_bits(), off.makespan.to_bits());
    for (a, b) in off.stats.iter().zip(&on.stats) {
        assert_eq!(
            a.finish_time.to_bits(),
            b.finish_time.to_bits(),
            "rank {}: telemetry must not move the virtual clock",
            a.rank
        );
        assert_eq!(
            a.counters, b.counters,
            "rank {}: telemetry must not touch any counter",
            a.rank
        );
    }
    // And the telemetry actually observed the run.
    let t = on.telemetry.expect("telemetry was configured");
    assert!(!t.windows.is_empty());
    assert_eq!(
        t.windows.iter().map(|w| w.records).sum::<u64>(),
        on.records
    );
    assert!(t.slo.expect("slo was configured").compliance > 0.0);
    assert!(on.latency_exact.is_some());
    // The gauge tracks exist on the observed run only — observation
    // happened, it just cost nothing.
    assert!(on.stats.iter().any(|s| s
        .gauges
        .iter()
        .any(|g| g.name == "serve.window.rps")));
    assert!(off.stats.iter().all(|s| s.gauges.is_empty()));
}

#[test]
fn pclouds_run_is_bit_identical_with_full_observability_on() {
    let scale = Scale::Quick;
    let n = 12_000;
    let p = 4;
    let engine = EngineConfig::new(512 * 1024, ReplacementPolicy::Lru, true);
    // Same workload, same engine; the only difference is spans + trace +
    // gauges (run_pclouds_profiled flips exactly those three).
    let off = run_pclouds_engine(n, p, scale, Strategy::Mixed, &engine);
    let on = run_pclouds_profiled(n, p, scale, Strategy::Mixed, &engine);
    assert_eq!(on.tree, off.tree, "observability must not change the tree");
    for (a, b) in off.run.stats.iter().zip(&on.run.stats) {
        assert_eq!(
            a.finish_time.to_bits(),
            b.finish_time.to_bits(),
            "rank {}: profiling must not move the virtual clock",
            a.rank
        );
        assert_eq!(
            a.counters, b.counters,
            "rank {}: profiling must not touch any counter",
            a.rank
        );
    }
    // The observed run carries the artifacts.
    assert!(on.run.stats.iter().any(|s| !s.spans.is_empty()));
    assert!(on.run.stats.iter().any(|s| !s.gauges.is_empty()));
}
