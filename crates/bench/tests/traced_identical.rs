//! Tracing must be free: a traced harness run reproduces the untraced
//! run's virtual times bit for bit.

use pdc_bench::harness::{run_pclouds, run_pclouds_traced, Scale};
use pdc_dnc::Strategy;

#[test]
fn traced_run_is_bit_identical_to_untraced() {
    let n = 20_000;
    let p = 4;
    let plain = run_pclouds(n, p, Scale::Quick, Strategy::Mixed);
    let traced = run_pclouds_traced(n, p, Scale::Quick, Strategy::Mixed);
    assert_eq!(plain.tree, traced.tree);
    for (a, b) in plain.run.stats.iter().zip(&traced.run.stats) {
        assert!(a.spans.is_empty() && a.trace.is_empty());
        assert!(!b.spans.is_empty() && !b.trace.is_empty());
        assert_eq!(
            a.finish_time.to_bits(),
            b.finish_time.to_bits(),
            "rank {}: tracing perturbed the virtual clock",
            a.rank
        );
    }
}
