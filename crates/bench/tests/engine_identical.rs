//! The asynchronous disk engine, disabled, must reproduce the plain
//! harness run's virtual times bit for bit — the regression contract that
//! lets the engine ship wired through every layer while staying inert by
//! default.

use pdc_bench::harness::{run_pclouds, run_pclouds_engine, Scale};
use pdc_dnc::Strategy;
use pdc_pario::{EngineConfig, ReplacementPolicy};

#[test]
fn disabled_engine_run_is_bit_identical() {
    let n = 20_000;
    let p = 4;
    let plain = run_pclouds(n, p, Scale::Quick, Strategy::Mixed);
    let disabled = run_pclouds_engine(n, p, Scale::Quick, Strategy::Mixed, &EngineConfig::disabled());
    assert_eq!(plain.tree, disabled.tree);
    for (a, b) in plain.run.stats.iter().zip(&disabled.run.stats) {
        assert_eq!(
            a.finish_time.to_bits(),
            b.finish_time.to_bits(),
            "rank {}: the disabled engine perturbed the virtual clock",
            a.rank
        );
        assert_eq!(a.counters, b.counters, "rank {}: counters diverged", a.rank);
    }
}

#[test]
fn enabled_engine_keeps_the_tree_and_the_accounting_identity() {
    let n = 20_000;
    let p = 4;
    let plain = run_pclouds(n, p, Scale::Quick, Strategy::Mixed);
    let engine = EngineConfig::new(512 * 1024, ReplacementPolicy::Lru, true);
    let engined = run_pclouds_engine(n, p, Scale::Quick, Strategy::Mixed, &engine);
    assert_eq!(plain.tree, engined.tree, "the engine must not change results");
    for s in &engined.run.stats {
        let c = &s.counters;
        let sum = c.compute_time
            + c.comm_time
            + c.io_time
            + c.fault_time
            + c.io_stall_time
            + s.idle_time();
        assert!(
            (sum - s.finish_time).abs() < 1e-9,
            "rank {}: accounting identity broke with the engine on",
            s.rank
        );
    }
}
