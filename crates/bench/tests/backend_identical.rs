//! The event-driven executor must be a perfect stand-in for the
//! thread-per-rank backend: for every harness configuration — plain,
//! fault-injected, engine-on, full telemetry, ensemble subgroups,
//! event-DAG recording — the same experiment on [`pdc_cgm::Backend::Event`]
//! must reproduce the [`pdc_cgm::Backend::Thread`] run bit for bit:
//! finish-time bits, counters, spans, gauges, exported trace bytes and the
//! recorded event graph. This is the contract that lets figures, perf-gate
//! baselines and large-`p` sweeps switch backends freely (the thread
//! backend stays the baseline of record).

use pdc_bench::harness::{
    machine_config, run_pclouds_machine, run_pclouds_machine_engine, Scale,
};
use pdc_cgm::replay::identity_check;
use pdc_cgm::{chrome_trace_json, Backend, Cluster, EventGraph, FaultPlan, MachineConfig};
use pdc_dnc::Strategy;
use pdc_ensemble::{train_ensemble_on, EnsembleConfig};
use pdc_pario::{EngineConfig, ReplacementPolicy};
use pdc_pclouds::TrainOutput;

const N: u64 = 20_000;
const P: usize = 4;

fn on_backend(backend: Backend) -> MachineConfig {
    let mut machine = machine_config(Scale::Quick);
    machine.backend = backend;
    // Pin the admission width so the test does not depend on the host's
    // core count (any width must give the same bits; 2 exercises real
    // multiplexing at p=4).
    machine.event_workers = 2;
    machine
}

fn assert_outputs_identical(thread: &TrainOutput, event: &TrainOutput, what: &str) {
    assert_eq!(thread.tree, event.tree, "{what}: trees diverged across backends");
    assert_eq!(thread.metrics, event.metrics, "{what}: build metrics diverged");
    for (a, b) in thread.run.stats.iter().zip(&event.run.stats) {
        assert_eq!(
            a.finish_time.to_bits(),
            b.finish_time.to_bits(),
            "{what}: rank {}: finish bits diverged across backends",
            a.rank
        );
        assert_eq!(a.counters, b.counters, "{what}: rank {}: counters", a.rank);
        assert_eq!(a.spans, b.spans, "{what}: rank {}: spans", a.rank);
        assert_eq!(a.gauges, b.gauges, "{what}: rank {}: gauges", a.rank);
        assert_eq!(a.trace, b.trace, "{what}: rank {}: trace events", a.rank);
        assert_eq!(a.events, b.events, "{what}: rank {}: recorded event DAG", a.rank);
    }
}

#[test]
fn backend_identical_plain() {
    let thread = run_pclouds_machine(N, P, Scale::Quick, Strategy::Mixed, on_backend(Backend::Thread));
    let event = run_pclouds_machine(N, P, Scale::Quick, Strategy::Mixed, on_backend(Backend::Event));
    assert_outputs_identical(&thread, &event, "plain");
}

#[test]
fn backend_identical_under_faults() {
    let mut plan = FaultPlan::with_seed(42);
    plan.link.drop_prob = 0.01;
    plan.link.delay_prob = 0.02;
    plan.disk.read_error_prob = 0.01;
    let run = |backend| {
        let mut machine = on_backend(backend);
        machine.faults = plan.clone();
        run_pclouds_machine(N, P, Scale::Quick, Strategy::Mixed, machine)
    };
    assert_outputs_identical(&run(Backend::Thread), &run(Backend::Event), "faults");
}

#[test]
fn backend_identical_with_engine() {
    let engine = EngineConfig::new(512 * 1024, ReplacementPolicy::Lru, true);
    let run = |backend| {
        run_pclouds_machine_engine(N, P, Scale::Quick, Strategy::Mixed, on_backend(backend), &engine)
    };
    assert_outputs_identical(&run(Backend::Thread), &run(Backend::Event), "engine");
}

#[test]
fn backend_identical_with_full_telemetry() {
    let run = |backend| {
        let mut machine = on_backend(backend);
        machine.trace = true;
        machine.spans = true;
        machine.gauges = true;
        run_pclouds_machine(N, P, Scale::Quick, Strategy::Mixed, machine)
    };
    let thread = run(Backend::Thread);
    let event = run(Backend::Event);
    assert_outputs_identical(&thread, &event, "telemetry");
    // The exported artifacts — what a human or CI actually diffs — must be
    // byte-equal, not merely equivalent.
    assert_eq!(
        chrome_trace_json(&thread.run.stats),
        chrome_trace_json(&event.run.stats),
        "telemetry: exported chrome traces differ across backends"
    );
}

#[test]
fn backend_identical_recorded_and_replayable() {
    let run = |backend| {
        let mut machine = on_backend(backend);
        machine.spans = true;
        machine.record = true;
        run_pclouds_machine(N, P, Scale::Quick, Strategy::Mixed, machine)
    };
    let thread = run(Backend::Thread);
    let event = run(Backend::Event);
    assert_outputs_identical(&thread, &event, "recorded");
    let tg = EventGraph::from_stats(&thread.run.stats);
    let eg = EventGraph::from_stats(&event.run.stats);
    assert_eq!(tg, eg, "recorded event graphs diverged across backends");
    // The event-backend recording must satisfy the replay identity on its
    // own terms, too — what-if replay is backend-agnostic.
    identity_check(&eg);
}

#[test]
fn backend_identical_ensemble_subgroups() {
    // Ensemble training exercises train_in_group's scoped communicators:
    // disjoint subgroups training concurrently, the scheduling that made
    // rank multiplexing subtle in the first place.
    use pdc_datagen::{generate, GeneratorConfig};
    let n = 6_000usize;
    let records = generate(n, GeneratorConfig::default());
    let run = |backend| {
        let mut cfg = EnsembleConfig::paper_scaled(n as u64);
        cfg.base = pdc_bench::harness::experiment_config(n as u64, Scale::Quick);
        cfg.trees = 4;
        cfg.subgroup_width = 2;
        let mut machine = on_backend(backend);
        machine.gauges = true;
        train_ensemble_on(&Cluster::with_config(P, machine), &records, &cfg)
    };
    let thread = run(Backend::Thread);
    let event = run(Backend::Event);
    assert_eq!(
        thread.model.trees, event.model.trees,
        "ensemble trees diverged across backends"
    );
    assert_eq!(
        thread.runtime().to_bits(),
        event.runtime().to_bits(),
        "ensemble makespan bits diverged across backends"
    );
    let t_peak = thread.peak_resident_bytes();
    let e_peak = event.peak_resident_bytes();
    assert_eq!(t_peak, e_peak, "ensemble peak-residency gauges diverged");
}
