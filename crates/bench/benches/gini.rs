//! Micro-benchmarks of the gini machinery: the index itself, the weighted
//! split score, and the SSE concave-relaxation lower bound.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use pdc_clouds::gini::{gini, interval_gini_lower_bound, split_gini};

fn bench_gini(c: &mut Criterion) {
    let counts = vec![12_345u64, 67_890];
    c.bench_function("gini/two_class", |b| {
        b.iter(|| gini(black_box(&counts)))
    });

    let left = vec![10_000u64, 2_000];
    let right = vec![3_000u64, 15_000];
    c.bench_function("gini/weighted_split", |b| {
        b.iter(|| split_gini(black_box(&left), black_box(&right)))
    });

    let cum = vec![500u64, 700];
    let interior = vec![120u64, 80];
    let total = vec![5_000u64, 5_000];
    c.bench_function("gini/sse_lower_bound", |b| {
        b.iter(|| {
            interval_gini_lower_bound(black_box(&cum), black_box(&interior), black_box(&total))
        })
    });
}

fn bench_boundary_sweep(c: &mut Criterion) {
    use pdc_clouds::{AttrIntervalStats, IntervalSet};
    // 10,000 intervals (the paper's q_root) over synthetic frequencies.
    let boundaries: Vec<f64> = (1..10_000).map(|i| i as f64).collect();
    let intervals = IntervalSet::from_boundaries(boundaries);
    let mut stats = AttrIntervalStats::new(0, intervals, 2);
    for i in 0..1_000_000u64 {
        let v = (i % 10_000) as f64 + 0.5;
        stats.add_value(v, (i % 2) as u8);
    }
    let total = stats.totals();
    c.bench_function("gini/boundary_sweep_q10000", |b| {
        b.iter(|| stats.best_boundary(black_box(&total)))
    });
    c.bench_function("gini/alive_determination_q10000", |b| {
        b.iter(|| stats.alive_intervals(black_box(&total), 0.45))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_gini, bench_boundary_sweep
}
criterion_main!(benches);
