//! End-to-end host-side benchmark: how fast the simulation itself trains
//! pCLOUDS (wall-clock of the whole simulated pipeline, not virtual time).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pdc_clouds::CloudsParams;
use pdc_datagen::{generate, GeneratorConfig};
use pdc_pclouds::{train_in_memory, PcloudsConfig};

fn bench_train(c: &mut Criterion) {
    let mut group = c.benchmark_group("pclouds_train_10k");
    group.sample_size(10);
    let records = generate(10_000, GeneratorConfig::default());
    let config = PcloudsConfig {
        clouds: CloudsParams {
            q_root: 200,
            sample_size: 2_000,
            ..CloudsParams::default()
        },
        memory_limit_bytes: 64 * 1024,
        ..PcloudsConfig::default()
    };
    for p in [1usize, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(p), &p, |b, &p| {
            b.iter(|| train_in_memory(&records, p, &config))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_train);
criterion_main!(benches);
