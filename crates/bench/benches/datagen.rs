//! Throughput of the synthetic data generator and of the wire/record
//! encoding layer the simulated disks and network move records through.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use pdc_cgm::Wire;
use pdc_datagen::{generate, GeneratorConfig, Record};
use pdc_pario::{decode_batch, encode_batch};

fn bench_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("datagen");
    group.sample_size(10);
    group.throughput(Throughput::Elements(100_000));
    group.bench_function("generate_100k", |b| {
        b.iter(|| generate(100_000, black_box(GeneratorConfig::default())))
    });
    group.finish();
}

fn bench_encoding(c: &mut Criterion) {
    let records = generate(50_000, GeneratorConfig::default());
    let bytes = encode_batch(&records);
    let mut group = c.benchmark_group("record_codec");
    group.sample_size(20);
    group.throughput(Throughput::Bytes(bytes.len() as u64));
    group.bench_function("encode_50k", |b| {
        b.iter(|| encode_batch(black_box(&records)))
    });
    group.bench_function("decode_50k", |b| {
        b.iter(|| decode_batch::<Record>(black_box(&bytes)))
    });
    group.bench_function("single_roundtrip", |b| {
        b.iter(|| Record::from_bytes(&black_box(&records[0]).to_bytes()))
    });
    group.finish();
}

criterion_group!(benches, bench_generation, bench_encoding);
criterion_main!(benches);
