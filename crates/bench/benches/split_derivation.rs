//! Micro-benchmarks of whole-node split derivation: SS vs SSE vs the
//! direct method, and SPRINT's attribute-list evaluation, at several node
//! sizes. This is the computational heart of every classifier compared in
//! the paper.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use pdc_baselines::build_tree_sprint;
use pdc_clouds::{
    build_tree, derive_split_in_memory, direct_best_split, draw_sample, CloudsParams, SplitMethod,
};
use pdc_datagen::{generate, GeneratorConfig};

fn params() -> CloudsParams {
    CloudsParams {
        q_root: 500,
        sample_size: 5_000,
        ..CloudsParams::default()
    }
}

fn bench_single_split(c: &mut Criterion) {
    let mut group = c.benchmark_group("derive_split");
    group.sample_size(10);
    for n in [10_000usize, 50_000] {
        let records = generate(n, GeneratorConfig::default());
        let sample = draw_sample(&records, 2_000, 7);
        for (name, method) in [
            ("ss", SplitMethod::SS),
            ("sse", SplitMethod::SSE),
        ] {
            group.bench_with_input(BenchmarkId::new(name, n), &n, |b, _| {
                let p = CloudsParams {
                    method,
                    ..params()
                };
                b.iter(|| derive_split_in_memory(black_box(&records), &sample, 200, &p))
            });
        }
        group.bench_with_input(BenchmarkId::new("direct", n), &n, |b, _| {
            b.iter(|| direct_best_split(black_box(&records), &params()))
        });
    }
    group.finish();
}

fn bench_full_tree(c: &mut Criterion) {
    let mut group = c.benchmark_group("full_tree_20k");
    group.sample_size(10);
    let records = generate(20_000, GeneratorConfig::default());
    group.bench_function("clouds_sse", |b| {
        b.iter(|| build_tree(black_box(&records), &params()))
    });
    group.bench_function("sprint", |b| {
        b.iter(|| build_tree_sprint(black_box(&records), &params()))
    });
    group.finish();
}

criterion_group!(benches, bench_single_split, bench_full_tree);
criterion_main!(benches);
