//! SPRINT (Shafer, Agrawal & Mehta, VLDB'96), the classifier CLOUDS is
//! positioned against.
//!
//! SPRINT pre-sorts one **attribute list** per numeric attribute —
//! `(value, class, rid)` triples in value order — and keeps them sorted
//! while partitioning, so no re-sorting ever happens below the root. The
//! price is the materialized lists (three fields per attribute per record)
//! and a rid hash/bitmap join at every split: exactly the memory behaviour
//! that motivates CLOUDS' interval sampling. We count that work
//! ([`SprintStats`]) so benches can compare against CLOUDS.

use pdc_clouds::gini::{split_gini, sub, ClassCounts};
use pdc_clouds::{CountMatrix, Candidate, CloudsParams, DecisionTree, Splitter};
use pdc_datagen::{Record, CATEGORICAL_CARDINALITY, NUM_CLASSES, NUM_NUMERIC};

/// One entry of a numeric attribute list.
#[derive(Debug, Clone, Copy, PartialEq)]
struct ListEntry {
    value: f64,
    rid: u32,
    class: u8,
}

/// Work counters of a SPRINT build.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SprintStats {
    /// Entries touched while scanning attribute lists for split evaluation.
    pub list_scans: u64,
    /// Entries moved while partitioning attribute lists.
    pub list_moves: u64,
    /// Comparisons spent in the initial pre-sorting.
    pub presort_comparisons: u64,
    /// Nodes processed.
    pub nodes: usize,
}

/// The per-node data SPRINT carries: one sorted list per numeric attribute
/// plus the records (for categorical counting and rid membership).
struct NodeData {
    lists: Vec<Vec<ListEntry>>,
    /// rid → record, only for the rids of this node.
    records: Vec<(u32, Record)>,
}

impl NodeData {
    fn n(&self) -> usize {
        self.records.len()
    }

    fn class_counts(&self) -> ClassCounts {
        let mut counts = vec![0u64; NUM_CLASSES];
        for (_, r) in &self.records {
            counts[r.class as usize] += 1;
        }
        counts
    }
}

/// Build a decision tree with SPRINT. Uses the same stopping criteria as
/// the CLOUDS builders (taken from `params`) so trees are comparable;
/// `params.method` is ignored (SPRINT is exact by construction).
pub fn build_tree_sprint(records: &[Record], params: &CloudsParams) -> (DecisionTree, SprintStats) {
    let mut stats = SprintStats::default();
    // Pre-sorting: done once, at the root — SPRINT's signature move.
    let mut lists: Vec<Vec<ListEntry>> = Vec::with_capacity(NUM_NUMERIC);
    for attr in 0..NUM_NUMERIC {
        let mut list: Vec<ListEntry> = records
            .iter()
            .enumerate()
            .map(|(rid, r)| ListEntry {
                value: r.num(attr),
                rid: rid as u32,
                class: r.class,
            })
            .collect();
        let n = list.len().max(2) as u64;
        stats.presort_comparisons += n * (n as f64).log2().ceil() as u64;
        list.sort_by(|a, b| a.value.partial_cmp(&b.value).expect("NaN attribute"));
        lists.push(list);
    }
    let root_data = NodeData {
        lists,
        records: records
            .iter()
            .enumerate()
            .map(|(rid, r)| (rid as u32, *r))
            .collect(),
    };
    let mut tree = DecisionTree::single_leaf(root_data.class_counts());
    let mut stack = vec![(tree.root(), root_data, 0usize)];
    while let Some((node_id, data, depth)) = stack.pop() {
        stats.nodes += 1;
        let counts = data.class_counts();
        if params.should_stop(&counts, depth) {
            continue;
        }
        let Some(cand) = best_split(&data, &counts, params, &mut stats) else {
            continue;
        };
        let (left, right) = partition(&data, &cand.splitter, &mut stats);
        if left.n() == 0 || right.n() == 0 {
            continue;
        }
        let (lc, rc) = (left.class_counts(), right.class_counts());
        let (l, r) = tree.split_leaf(node_id, cand.splitter, lc, rc);
        stack.push((l, left, depth + 1));
        stack.push((r, right, depth + 1));
    }
    (tree, stats)
}

/// Exact best split: numeric attributes from the sorted lists, categorical
/// attributes from count matrices.
fn best_split(
    data: &NodeData,
    node_total: &ClassCounts,
    params: &CloudsParams,
    stats: &mut SprintStats,
) -> Option<Candidate> {
    let mut best: Option<Candidate> = None;
    for (attr, list) in data.lists.iter().enumerate() {
        stats.list_scans += list.len() as u64;
        let mut left = vec![0u64; NUM_CLASSES];
        let mut i = 0;
        while i < list.len() {
            let v = list[i].value;
            while i < list.len() && list[i].value == v {
                left[list[i].class as usize] += 1;
                i += 1;
            }
            if i == list.len() {
                break; // split at the maximum cannot partition
            }
            let right = sub(node_total, &left);
            let g = split_gini(&left, &right);
            best = Candidate::better(
                best,
                Candidate {
                    gini: g,
                    splitter: Splitter::Numeric { attr, threshold: v },
                    left_counts: left.clone(),
                },
            );
        }
    }
    for (attr, &card) in CATEGORICAL_CARDINALITY.iter().enumerate() {
        let mut m = CountMatrix::new(attr, card, NUM_CLASSES);
        for (_, r) in &data.records {
            m.add_value(r.cat(attr), r.class);
        }
        stats.list_scans += data.records.len() as u64;
        if let Some(c) = m.best_split(node_total, params.cat_exhaustive_limit) {
            best = Candidate::better(best, c);
        }
    }
    best
}

/// Partition via a rid membership bitmap (SPRINT's "hash table" of rids on
/// the winning attribute), keeping each attribute list sorted.
fn partition(data: &NodeData, splitter: &Splitter, stats: &mut SprintStats) -> (NodeData, NodeData) {
    // Membership of every rid of the node.
    let mut goes_left = std::collections::HashMap::with_capacity(data.records.len());
    for (rid, r) in &data.records {
        goes_left.insert(*rid, splitter.goes_left(r));
    }
    let split_list = |list: &Vec<ListEntry>| -> (Vec<ListEntry>, Vec<ListEntry>) {
        let mut l = Vec::new();
        let mut r = Vec::new();
        for e in list {
            if goes_left[&e.rid] {
                l.push(*e);
            } else {
                r.push(*e);
            }
        }
        (l, r)
    };
    let mut left_lists = Vec::with_capacity(NUM_NUMERIC);
    let mut right_lists = Vec::with_capacity(NUM_NUMERIC);
    for list in &data.lists {
        stats.list_moves += list.len() as u64;
        let (l, r) = split_list(list);
        left_lists.push(l);
        right_lists.push(r);
    }
    let (mut lrec, mut rrec) = (Vec::new(), Vec::new());
    for (rid, r) in &data.records {
        if goes_left[rid] {
            lrec.push((*rid, *r));
        } else {
            rrec.push((*rid, *r));
        }
    }
    (
        NodeData {
            lists: left_lists,
            records: lrec,
        },
        NodeData {
            lists: right_lists,
            records: rrec,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdc_clouds::{accuracy, build_tree, holdout_pair, SplitMethod};
    use pdc_datagen::{generate, ClassifyFn, GeneratorConfig};

    fn params() -> CloudsParams {
        CloudsParams {
            q_root: 100,
            sample_size: 2_000,
            ..CloudsParams::default()
        }
    }

    #[test]
    fn sprint_learns_f2() {
        let (train, test) = holdout_pair(ClassifyFn::F2, 4_800, 1_200, 0.0);
        let (tree, stats) = build_tree_sprint(&train, &params());
        let acc = accuracy(&tree, &test);
        assert!(acc > 0.95, "accuracy {acc}");
        assert!(stats.presort_comparisons > 0);
        assert!(stats.nodes > 1);
    }

    #[test]
    fn sprint_root_split_matches_direct_method() {
        // Both are exact: the root split gini must agree with the direct
        // method's.
        let records = generate(3_000, GeneratorConfig::default());
        let direct = pdc_clouds::direct_best_split(&records, &params()).unwrap();
        let mut stats = SprintStats::default();
        let mut lists = Vec::new();
        for attr in 0..NUM_NUMERIC {
            let mut list: Vec<ListEntry> = records
                .iter()
                .enumerate()
                .map(|(rid, r)| ListEntry {
                    value: r.num(attr),
                    rid: rid as u32,
                    class: r.class,
                })
                .collect();
            list.sort_by(|a, b| a.value.partial_cmp(&b.value).unwrap());
            lists.push(list);
        }
        let data = NodeData {
            lists,
            records: records.iter().enumerate().map(|(i, r)| (i as u32, *r)).collect(),
        };
        let total = data.class_counts();
        let sprint = best_split(&data, &total, &params(), &mut stats).unwrap();
        assert!(
            (sprint.gini - direct.gini).abs() < 1e-12,
            "sprint {} vs direct {}",
            sprint.gini,
            direct.gini
        );
    }

    #[test]
    fn sprint_and_clouds_sse_have_similar_accuracy() {
        let (train, test) = holdout_pair(ClassifyFn::F2, 6_400, 1_600, 0.0);
        let (sprint_tree, _) = build_tree_sprint(&train, &params());
        let sse_tree = build_tree(
            &train,
            &CloudsParams {
                method: SplitMethod::SSE,
                ..params()
            },
        );
        let (a, b) = (accuracy(&sprint_tree, &test), accuracy(&sse_tree, &test));
        assert!((a - b).abs() < 0.03, "sprint {a} vs clouds {b}");
    }

    #[test]
    fn lists_stay_sorted_through_partitioning() {
        let records = generate(1_000, GeneratorConfig::default());
        let (tree, _) = build_tree_sprint(&records, &params());
        // Indirect check: tree must classify training data consistently
        // with exact splits (high training accuracy).
        assert!(accuracy(&tree, &records) > 0.97);
    }

    #[test]
    fn empty_and_tiny_inputs() {
        let (tree, stats) = build_tree_sprint(&[], &params());
        assert_eq!(tree.num_nodes(), 1);
        assert_eq!(stats.nodes, 1);
        let one = generate(1, GeneratorConfig::default());
        let (tree, _) = build_tree_sprint(&one, &params());
        assert_eq!(tree.num_nodes(), 1);
    }
}
