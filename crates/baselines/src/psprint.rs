//! Parallel SPRINT — synchronized tree construction over distributed,
//! pre-sorted attribute lists (the approach of Shafer et al.'s parallel
//! SPRINT and Joshi et al.'s ScalParC, the "more scalable parallel
//! implementation" the paper cites as the state of the art it competes
//! with).
//!
//! Design (one-time work, then one synchronized level at a time):
//!
//! * **Pre-sorting**: each numeric attribute's `(value, rid, class)` list
//!   is globally sample-sorted once; every processor owns a contiguous
//!   value range of every attribute.
//! * **Replicated node map**: `node_of[rid]` (and `class_of[rid]`) are
//!   memory-resident on every processor — SPRINT's scalability sin, which
//!   this implementation reports as `replicated_bytes` so benches can show
//!   what CLOUDS' interval sampling avoids.
//! * **Split evaluation**: every processor sweeps its list segments; an
//!   exclusive prefix sum supplies the class counts before each segment,
//!   and a candidate election picks the global winner per growing node.
//! * **Split application**: each processor partitions its rid-slice of the
//!   records, and the rid→child assignments are all-gathered so every
//!   replica of the node map stays consistent (the O(n)-per-level
//!   communication ScalParC's distributed hash attacks).
//!
//! Unlike pCLOUDS this classifier is **in-core**: the attribute lists and
//! the node map live in memory, which is exactly the regime the paper
//! leaves behind.

use pdc_cgm::{OpKind, Proc};
use pdc_clouds::gini::{split_gini, sub, ClassCounts};
use pdc_clouds::{Candidate, CloudsParams, CountMatrix, DecisionTree, Node, NodeId, Splitter};
use pdc_datagen::{Record, CATEGORICAL_CARDINALITY, NUM_CLASSES, NUM_NUMERIC};

/// One entry of a distributed attribute list.
#[derive(Debug, Clone, Copy)]
struct Entry {
    value: f64,
    rid: u32,
}

/// Work/memory counters of a parallel SPRINT run (per processor).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PsprintStats {
    /// Bytes of memory-resident replicated state (node map + class map).
    pub replicated_bytes: u64,
    /// Attribute-list entries resident on this processor.
    pub list_entries: u64,
    /// Tree levels processed.
    pub levels: usize,
}

/// *Collective.* Build a decision tree with synchronized (level-by-level)
/// parallel SPRINT. Every processor receives `records` sliced round-robin
/// by rank (`records[i]` with `i % p == rank` belongs to this rank — pass
/// the full set; slicing happens internally so rids stay global).
///
/// Returns the identical tree on every rank plus per-rank stats.
pub fn build_tree_psprint(
    proc: &mut Proc,
    records: &[Record],
    params: &CloudsParams,
) -> (DecisionTree, PsprintStats) {
    let p = proc.nprocs();
    let rank = proc.rank();
    let n = records.len();
    let mut stats = PsprintStats::default();

    // Replicated, memory-resident maps (the SPRINT cost CLOUDS avoids).
    let class_of: Vec<u8> = records.iter().map(|r| r.class).collect();
    let mut node_of: Vec<NodeId> = vec![0; n];
    stats.replicated_bytes = (n * (1 + std::mem::size_of::<NodeId>())) as u64;

    let mut counts = vec![0u64; NUM_CLASSES];
    for r in records {
        counts[r.class as usize] += 1;
    }
    let mut tree = DecisionTree::single_leaf(counts);
    if n == 0 {
        return (tree, stats);
    }

    // My rid slice (round-robin), for categorical counting and split
    // application.
    let my_rids: Vec<u32> = (0..n).filter(|i| i % p == rank).map(|i| i as u32).collect();

    // --- One-time pre-sorting: global sample sort per numeric attribute.
    let mut lists: Vec<Vec<Entry>> = Vec::with_capacity(NUM_NUMERIC);
    for attr in 0..NUM_NUMERIC {
        let local: Vec<(f64, u64)> = my_rids
            .iter()
            .map(|&rid| (records[rid as usize].num(attr), rid as u64))
            .collect();
        // Splitters from an all-gathered sample.
        let sample: Vec<f64> = local.iter().step_by((local.len() / 32).max(1)).map(|e| e.0).collect();
        let mut merged: Vec<f64> = proc.all_gather(sample).into_iter().flatten().collect();
        merged.sort_by(|a, b| a.total_cmp(b));
        let splitters: Vec<f64> = (1..p)
            .map(|j| merged[(j * merged.len()) / p.max(1)])
            .collect();
        // Route each entry to its value-range owner.
        let mut parts: Vec<Vec<(f64, u64)>> = vec![Vec::new(); p];
        for e in local {
            let dst = splitters.partition_point(|&s| s < e.0);
            parts[dst].push(e);
        }
        let received = proc.all_to_all(parts);
        let mut segment: Vec<Entry> = received
            .into_iter()
            .flatten()
            .map(|(value, rid)| Entry {
                value,
                rid: rid as u32,
            })
            .collect();
        proc.charge(
            OpKind::Compare,
            (segment.len().max(2) as u64) * (segment.len().max(2) as f64).log2() as u64,
        );
        segment.sort_by(|a, b| a.value.total_cmp(&b.value).then(a.rid.cmp(&b.rid)));
        stats.list_entries += segment.len() as u64;
        lists.push(segment);
    }

    // --- Synchronized level-by-level construction.
    let mut depth = 0usize;
    loop {
        // Growing leaves (identical on every rank: replicated maps).
        let mut growing: Vec<NodeId> = Vec::new();
        {
            let mut totals: std::collections::HashMap<NodeId, ClassCounts> =
                std::collections::HashMap::new();
            for (rid, &leaf) in node_of.iter().enumerate() {
                if matches!(tree.nodes[leaf], Node::Leaf { .. }) {
                    totals
                        .entry(leaf)
                        .or_insert_with(|| vec![0u64; NUM_CLASSES])
                        [class_of[rid] as usize] += 1;
                }
            }
            for (leaf, c) in totals {
                if !params.should_stop(&c, depth) {
                    growing.push(leaf);
                }
            }
            growing.sort_unstable();
        }
        if growing.is_empty() {
            break;
        }
        stats.levels += 1;
        let node_index = |leaf: NodeId| growing.binary_search(&leaf).ok();
        let totals_of: Vec<ClassCounts> = growing
            .iter()
            .map(|&leaf| tree.nodes[leaf].counts().clone())
            .collect();

        // Numeric attributes: sweep the local segments; exclusive prefix
        // sums provide the counts before each segment per growing node.
        let mut local_best: Vec<(u64, Candidate)> = Vec::new();
        for (attr, segment) in lists.iter().enumerate() {
            proc.charge_ws(
                OpKind::RecordScan,
                segment.len() as u64,
                segment.len() * std::mem::size_of::<Entry>(),
            );
            // My per-node segment totals.
            let mut seg_totals = vec![vec![0u64; NUM_CLASSES]; growing.len()];
            for e in segment {
                if let Some(g) = node_index(node_of[e.rid as usize]) {
                    seg_totals[g][class_of[e.rid as usize] as usize] += 1;
                }
            }
            let before = proc.exscan(
                seg_totals.clone(),
                vec![vec![0u64; NUM_CLASSES]; growing.len()],
                |a, b| {
                    a.iter()
                        .zip(&b)
                        .map(|(x, y)| x.iter().zip(y).map(|(u, v)| u + v).collect())
                        .collect()
                },
            );
            // Do neighbouring segments share my last value? (A candidate
            // there would split a run of equal values.)
            let first_values: Vec<Option<f64>> =
                proc.all_gather(segment.first().map(|e| e.value));
            let next_first = first_values
                .iter()
                .skip(rank + 1)
                .flatten()
                .next()
                .copied();
            let mut left = before;
            let mut i = 0;
            while i < segment.len() {
                let v = segment[i].value;
                while i < segment.len() && segment[i].value == v {
                    let rid = segment[i].rid as usize;
                    if let Some(g) = node_index(node_of[rid]) {
                        left[g][class_of[rid] as usize] += 1;
                    }
                    i += 1;
                }
                // Last local value continuing into the next segment: skip.
                if i == segment.len() && next_first == Some(v) {
                    break;
                }
                for (g, l) in left.iter().enumerate() {
                    let total = &totals_of[g];
                    let nl: u64 = l.iter().sum();
                    let nt: u64 = total.iter().sum();
                    if nl == 0 || nl == nt {
                        continue;
                    }
                    proc.charge(OpKind::GiniEval, 1);
                    let r = sub(total, l);
                    let cand = Candidate {
                        gini: split_gini(l, &r),
                        splitter: Splitter::Numeric { attr, threshold: v },
                        left_counts: l.clone(),
                    };
                    local_best.push((g as u64, cand));
                }
            }
        }
        // Categorical attributes: local count matrices + global combine.
        for (attr, &card) in CATEGORICAL_CARDINALITY.iter().enumerate() {
            let mut matrices: Vec<CountMatrix> = growing
                .iter()
                .map(|_| CountMatrix::new(attr, card, NUM_CLASSES))
                .collect();
            for &rid in &my_rids {
                if let Some(g) = node_index(node_of[rid as usize]) {
                    matrices[g].add_value(records[rid as usize].cat(attr), class_of[rid as usize]);
                }
            }
            let combined = proc.allreduce(matrices, |mut xs, ys| {
                for (x, y) in xs.iter_mut().zip(&ys) {
                    x.merge(y);
                }
                xs
            });
            for (g, m) in combined.into_iter().enumerate() {
                proc.charge(OpKind::GiniEval, card as u64);
                if let Some(c) = m.best_split(&totals_of[g], params.cat_exhaustive_limit) {
                    local_best.push((g as u64, c));
                }
            }
        }
        // Reduce to this rank's best per node, then elect globally.
        let mut mine: std::collections::HashMap<u64, Candidate> = std::collections::HashMap::new();
        for (g, c) in local_best {
            let merged = Candidate::better(mine.remove(&g), c).unwrap();
            mine.insert(g, merged);
        }
        let mine: Vec<(u64, Candidate)> = {
            let mut v: Vec<_> = mine.into_iter().collect();
            v.sort_by_key(|(g, _)| *g);
            v
        };
        let gathered = proc.all_gather(mine);
        let mut winners: std::collections::HashMap<u64, Candidate> =
            std::collections::HashMap::new();
        for list in gathered {
            for (g, c) in list {
                let merged = Candidate::better(winners.remove(&g), c).unwrap();
                winners.insert(g, merged);
            }
        }

        // Apply splits (every rank has the same winners — same tree).
        let mut children: std::collections::HashMap<NodeId, (NodeId, NodeId, Splitter)> =
            std::collections::HashMap::new();
        let mut any = false;
        let mut sorted: Vec<(u64, Candidate)> = winners.into_iter().collect();
        sorted.sort_by_key(|(g, _)| *g);
        for (g, cand) in sorted {
            let leaf = growing[g as usize];
            let total = tree.nodes[leaf].counts().clone();
            let right = sub(&total, &cand.left_counts);
            if cand.left_counts.iter().sum::<u64>() == 0 || right.iter().sum::<u64>() == 0 {
                continue;
            }
            let (l, r) = tree.split_leaf(leaf, cand.splitter.clone(), cand.left_counts, right);
            children.insert(leaf, (l, r, cand.splitter));
            any = true;
        }
        if !any {
            break;
        }
        // Update the replicated node map: each rank resolves its rid slice
        // and the assignments are all-gathered (O(n) per level).
        let my_moves: Vec<(u64, u64)> = my_rids
            .iter()
            .filter_map(|&rid| {
                children.get(&node_of[rid as usize]).map(|(l, r, splitter)| {
                    proc.charge(OpKind::SplitTest, 1);
                    let child = if splitter.goes_left(&records[rid as usize]) {
                        *l
                    } else {
                        *r
                    };
                    (rid as u64, child as u64)
                })
            })
            .collect();
        for moves in proc.all_gather(my_moves) {
            for (rid, child) in moves {
                node_of[rid as usize] = child as NodeId;
            }
        }
        depth += 1;
        if depth >= params.max_depth {
            break;
        }
    }
    (tree, stats)
}
