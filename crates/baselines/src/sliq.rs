//! SLIQ (Mehta, Agrawal & Rissanen, EDBT'96), the other pre-CLOUDS
//! classifier the paper discusses: "SLIQ replaces this repeated sorting
//! with one-time sorting by maintaining separate lists for each attribute.
//! However, SLIQ uses a memory-resident data structure called *class list*
//! which limits the number of input records it can handle."
//!
//! The implementation is faithful to that design: one pre-sorted attribute
//! list per numeric attribute shared by the *whole tree* (never
//! partitioned), plus the memory-resident **class list** mapping every
//! record id to its class and its current leaf. One pass over an attribute
//! list evaluates the gini of every candidate split of *every* growing
//! leaf simultaneously (breadth-first level at a time).

use std::collections::HashMap;

use pdc_clouds::gini::{split_gini, sub, ClassCounts};
use pdc_clouds::{Candidate, CloudsParams, CountMatrix, DecisionTree, Node, NodeId, Splitter};
use pdc_datagen::{Record, CATEGORICAL_CARDINALITY, NUM_CLASSES, NUM_NUMERIC};

/// Work counters of a SLIQ build.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SliqStats {
    /// Peak resident class-list entries (the structure that limits SLIQ's
    /// scalability — always equals the training-set size).
    pub class_list_entries: usize,
    /// Attribute-list entries scanned across all levels.
    pub list_scans: u64,
    /// Tree levels processed.
    pub levels: usize,
}

/// One entry of the class list: the record's class and its current leaf.
#[derive(Debug, Clone, Copy)]
struct ClassListEntry {
    class: u8,
    leaf: NodeId,
}

/// Build a decision tree with SLIQ's breadth-first, class-list-driven
/// construction. Stopping criteria come from `params` (its `method` is
/// ignored; SLIQ is exact).
pub fn build_tree_sliq(records: &[Record], params: &CloudsParams) -> (DecisionTree, SliqStats) {
    let mut stats = SliqStats {
        class_list_entries: records.len(),
        ..SliqStats::default()
    };
    let mut counts = vec![0u64; NUM_CLASSES];
    for r in records {
        counts[r.class as usize] += 1;
    }
    let mut tree = DecisionTree::single_leaf(counts);
    if records.is_empty() {
        return (tree, stats);
    }

    // One-time sorting: (value, rid) per numeric attribute.
    let mut attr_lists: Vec<Vec<(f64, u32)>> = Vec::with_capacity(NUM_NUMERIC);
    for attr in 0..NUM_NUMERIC {
        let mut list: Vec<(f64, u32)> = records
            .iter()
            .enumerate()
            .map(|(rid, r)| (r.num(attr), rid as u32))
            .collect();
        list.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("NaN attribute"));
        attr_lists.push(list);
    }

    // The memory-resident class list.
    let mut class_list: Vec<ClassListEntry> = records
        .iter()
        .map(|r| ClassListEntry {
            class: r.class,
            leaf: tree.root(),
        })
        .collect();

    let mut depth = 0usize;
    loop {
        // Growing leaves of the current level: those not yet stopped.
        let mut growing: Vec<NodeId> = Vec::new();
        {
            let mut seen: HashMap<NodeId, ClassCounts> = HashMap::new();
            for entry in &class_list {
                if matches!(tree.nodes[entry.leaf], Node::Leaf { .. }) {
                    seen.entry(entry.leaf)
                        .or_insert_with(|| vec![0u64; NUM_CLASSES])[entry.class as usize] += 1;
                }
            }
            for (leaf, counts) in seen {
                if !params.should_stop(&counts, depth) {
                    growing.push(leaf);
                }
            }
            growing.sort_unstable();
        }
        if growing.is_empty() {
            break;
        }
        stats.levels += 1;

        // Per-growing-leaf running state for the simultaneous scan.
        let mut totals: HashMap<NodeId, ClassCounts> = HashMap::new();
        for entry in &class_list {
            if growing.contains(&entry.leaf) {
                totals
                    .entry(entry.leaf)
                    .or_insert_with(|| vec![0u64; NUM_CLASSES])[entry.class as usize] += 1;
            }
        }
        let mut best: HashMap<NodeId, Candidate> = HashMap::new();
        let mut consider = |leaf: NodeId, cand: Candidate| {
            let merged = Candidate::better(best.remove(&leaf), cand).unwrap();
            best.insert(leaf, merged);
        };

        // Numeric attributes: one pass per pre-sorted list evaluates every
        // growing leaf's candidate thresholds at once.
        for (attr, list) in attr_lists.iter().enumerate() {
            stats.list_scans += list.len() as u64;
            let mut left: HashMap<NodeId, ClassCounts> = HashMap::new();
            let mut i = 0;
            while i < list.len() {
                let v = list[i].0;
                // Consume the run of equal values, updating left counts.
                while i < list.len() && list[i].0 == v {
                    let entry = class_list[list[i].1 as usize];
                    if totals.contains_key(&entry.leaf) {
                        left.entry(entry.leaf)
                            .or_insert_with(|| vec![0u64; NUM_CLASSES])
                            [entry.class as usize] += 1;
                    }
                    i += 1;
                }
                // Candidate split at threshold v for every touched leaf.
                for (&leaf, l) in &left {
                    let total = &totals[&leaf];
                    let r = sub(total, l);
                    let (nl, nr): (u64, u64) = (l.iter().sum(), r.iter().sum());
                    if nl == 0 || nr == 0 {
                        continue;
                    }
                    consider(
                        leaf,
                        Candidate {
                            gini: split_gini(l, &r),
                            splitter: Splitter::Numeric { attr, threshold: v },
                            left_counts: l.clone(),
                        },
                    );
                }
            }
        }

        // Categorical attributes: count matrices per growing leaf.
        for (attr, &card) in CATEGORICAL_CARDINALITY.iter().enumerate() {
            let mut matrices: HashMap<NodeId, CountMatrix> = HashMap::new();
            for (rid, entry) in class_list.iter().enumerate() {
                if totals.contains_key(&entry.leaf) {
                    matrices
                        .entry(entry.leaf)
                        .or_insert_with(|| CountMatrix::new(attr, card, NUM_CLASSES))
                        .add_value(records[rid].cat(attr), entry.class);
                }
            }
            stats.list_scans += class_list.len() as u64;
            for (leaf, m) in matrices {
                if let Some(c) = m.best_split(&totals[&leaf], params.cat_exhaustive_limit) {
                    consider(leaf, c);
                }
            }
        }

        // Apply the winning splits and update the class list in place (the
        // SLIQ trick: no data movement, just leaf pointers).
        let mut split_leaves: Vec<(NodeId, Candidate)> = best.into_iter().collect();
        split_leaves.sort_by_key(|(leaf, _)| *leaf);
        if split_leaves.is_empty() {
            break;
        }
        let mut children: HashMap<NodeId, (NodeId, NodeId, Splitter)> = HashMap::new();
        for (leaf, cand) in split_leaves {
            let total = tree.nodes[leaf].counts().clone();
            let right_counts = sub(&total, &cand.left_counts);
            if cand.left_counts.iter().sum::<u64>() == 0
                || right_counts.iter().sum::<u64>() == 0
            {
                continue;
            }
            let (l, r) = tree.split_leaf(leaf, cand.splitter.clone(), cand.left_counts, right_counts);
            children.insert(leaf, (l, r, cand.splitter));
        }
        if children.is_empty() {
            break;
        }
        for (rid, entry) in class_list.iter_mut().enumerate() {
            if let Some((l, r, splitter)) = children.get(&entry.leaf) {
                entry.leaf = if splitter.goes_left(&records[rid]) { *l } else { *r };
            }
        }
        depth += 1;
        if depth >= params.max_depth {
            break;
        }
    }
    (tree, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build_tree_direct;
    use pdc_clouds::{accuracy, holdout_pair};
    use pdc_datagen::{generate, ClassifyFn, GeneratorConfig};

    fn params() -> CloudsParams {
        CloudsParams {
            q_root: 100,
            sample_size: 1_000,
            ..CloudsParams::default()
        }
    }

    #[test]
    fn sliq_learns_f2() {
        let (train, test) = holdout_pair(ClassifyFn::F2, 4_800, 1_200, 0.0);
        let (tree, stats) = build_tree_sliq(&train, &params());
        let acc = accuracy(&tree, &test);
        assert!(acc > 0.95, "accuracy {acc}");
        assert_eq!(stats.class_list_entries, train.len());
        assert!(stats.levels > 1);
    }

    #[test]
    fn sliq_matches_direct_method_accuracy() {
        // Both are exact gini optimizers; depth-first vs breadth-first
        // order does not change per-node decisions.
        let (train, test) = holdout_pair(ClassifyFn::F7, 4_000, 1_000, 0.0);
        let (sliq_tree, _) = build_tree_sliq(&train, &params());
        let direct_tree = build_tree_direct(&train, &params());
        let (a, b) = (accuracy(&sliq_tree, &test), accuracy(&direct_tree, &test));
        assert!((a - b).abs() < 0.02, "sliq {a} vs direct {b}");
    }

    #[test]
    fn sliq_root_split_matches_direct() {
        let records = generate(2_000, GeneratorConfig::default());
        let p = CloudsParams {
            max_depth: 1,
            ..params()
        };
        let (tree, _) = build_tree_sliq(&records, &p);
        let direct = pdc_clouds::direct_best_split(&records, &p).unwrap();
        match &tree.nodes[0] {
            Node::Internal { splitter, counts, .. } => {
                let left = match &tree.nodes[1] {
                    Node::Leaf { counts, .. } => counts.clone(),
                    _ => panic!(),
                };
                let right = sub(counts, &left);
                let g = split_gini(&left, &right);
                assert!(
                    (g - direct.gini).abs() < 1e-12,
                    "sliq root gini {g} vs direct {} ({})",
                    direct.gini,
                    splitter.describe()
                );
            }
            Node::Leaf { .. } => panic!("root did not split"),
        }
    }

    #[test]
    fn sliq_respects_stopping_rules() {
        let records = generate(2_000, GeneratorConfig::default());
        let p = CloudsParams {
            max_depth: 2,
            ..params()
        };
        let (tree, _) = build_tree_sliq(&records, &p);
        assert!(tree.depth() <= 2);
        let p = CloudsParams {
            min_node_size: 100_000,
            ..params()
        };
        let (tree, _) = build_tree_sliq(&records, &p);
        assert_eq!(tree.num_nodes(), 1);
    }

    #[test]
    fn empty_and_pure_inputs() {
        let (tree, stats) = build_tree_sliq(&[], &params());
        assert_eq!(tree.num_nodes(), 1);
        assert_eq!(stats.class_list_entries, 0);
        let mut records = generate(500, GeneratorConfig::default());
        for r in &mut records {
            r.class = 0;
        }
        let (tree, _) = build_tree_sliq(&records, &params());
        assert_eq!(tree.num_nodes(), 1);
    }
}
