//! # pdc-baselines — comparator classifiers
//!
//! The classifiers the paper positions CLOUDS/pCLOUDS against:
//!
//! * [`build_tree_sprint`] — SPRINT with pre-sorted attribute lists and
//!   rid-join partitioning (exact splits; heavy memory traffic — the cost
//!   profile CLOUDS' interval sampling avoids);
//! * [`build_tree_sliq`] — SLIQ with one-time sorting and the
//!   memory-resident class list (the structure whose size limits SLIQ's
//!   scalability, as the paper notes);
//! * [`build_tree_psprint`] — parallel SPRINT / ScalParC-style synchronized
//!   tree construction over the simulated machine (distributed pre-sorted
//!   attribute lists, replicated node map), the parallel in-core
//!   comparator;
//! * the in-core exact-gini tree is `pdc_clouds::SplitMethod::Direct`
//!   (CART-style reference), re-exported here as [`build_tree_direct`] for
//!   convenience.

//!
//! ```
//! use pdc_baselines::build_tree_sprint;
//! use pdc_clouds::{accuracy, CloudsParams};
//! use pdc_datagen::{generate, GeneratorConfig};
//!
//! let records = generate(1_000, GeneratorConfig::default());
//! let params = CloudsParams { q_root: 50, sample_size: 200, ..Default::default() };
//! let (tree, stats) = build_tree_sprint(&records, &params);
//! assert!(accuracy(&tree, &records) > 0.95);
//! assert!(stats.presort_comparisons > 0);
//! ```

#![warn(missing_docs)]

pub mod psprint;
pub mod sliq;
pub mod sprint;

pub use psprint::{build_tree_psprint, PsprintStats};
pub use sliq::{build_tree_sliq, SliqStats};
pub use sprint::{build_tree_sprint, SprintStats};

use pdc_clouds::{build_tree, CloudsParams, DecisionTree, SplitMethod};
use pdc_datagen::Record;

/// Exact in-core gini tree (CART-style reference): the CLOUDS builder with
/// the direct method.
pub fn build_tree_direct(records: &[Record], params: &CloudsParams) -> DecisionTree {
    build_tree(
        records,
        &CloudsParams {
            method: SplitMethod::Direct,
            ..params.clone()
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdc_clouds::accuracy;
    use pdc_datagen::{generate, GeneratorConfig};

    #[test]
    fn direct_reference_wrapper_works() {
        let records = generate(2_000, GeneratorConfig::default());
        let tree = build_tree_direct(&records, &CloudsParams::default());
        assert!(accuracy(&tree, &records) > 0.97);
    }
}
