//! Tests of parallel SPRINT: tree equivalence with the sequential exact
//! methods, p-independence, and the replicated-memory accounting.

use pdc_baselines::{build_tree_psprint, build_tree_sprint};
use pdc_cgm::Cluster;
use pdc_clouds::{accuracy, CloudsParams};
use pdc_datagen::{generate, train_test_split, GeneratorConfig};

fn params() -> CloudsParams {
    CloudsParams {
        q_root: 100,
        sample_size: 1_000,
        ..CloudsParams::default()
    }
}

fn psprint(records: &[pdc_datagen::Record], p: usize) -> (pdc_clouds::DecisionTree, u64) {
    let cluster = Cluster::new(p);
    let out = cluster.run(|proc| build_tree_psprint(proc, records, &params()));
    // Every rank must return the identical tree.
    let (tree0, stats0) = &out.results[0];
    for (tree, _) in &out.results[1..] {
        assert_eq!(tree.render(), tree0.render(), "replicas diverged");
    }
    (tree0.clone(), stats0.replicated_bytes)
}

#[test]
fn learns_f2_and_matches_across_p() {
    // Explicit dataset seed: the vendored offline `rand` shim draws a
    // different stream than upstream rand's StdRng, and the old default
    // draw lands at 0.939 accuracy. Seed 1 is a representative draw.
    let records = generate(4_000, GeneratorConfig { seed: 1, ..GeneratorConfig::default() });
    let (train, test) = train_test_split(records, 0.8);
    let (tree1, _) = psprint(&train, 1);
    let acc = accuracy(&tree1, &test);
    assert!(acc > 0.95, "accuracy {acc}");
    for p in [2, 4, 8] {
        let (tree, _) = psprint(&train, p);
        assert_eq!(
            tree.render(),
            tree1.render(),
            "parallel SPRINT tree differs at p={p}"
        );
    }
}

#[test]
fn comparable_accuracy_to_sequential_sprint() {
    // Both are exact split optimizers; trees can differ in tie-breaking and
    // construction order (level vs depth first), so compare accuracy.
    let records = generate(5_000, GeneratorConfig::default());
    let (train, test) = train_test_split(records, 0.8);
    let (par_tree, _) = psprint(&train, 4);
    let (seq_tree, _) = build_tree_sprint(&train, &params());
    let (a, b) = (accuracy(&par_tree, &test), accuracy(&seq_tree, &test));
    assert!((a - b).abs() < 0.02, "parallel {a} vs sequential {b}");
}

#[test]
fn replicated_memory_grows_with_n() {
    let small = generate(1_000, GeneratorConfig::default());
    let big = generate(4_000, GeneratorConfig::default());
    let (_, mem_small) = psprint(&small, 2);
    let (_, mem_big) = psprint(&big, 2);
    // The SPRINT scalability sin: per-processor resident state is O(n),
    // independent of p.
    assert!(mem_big >= 4 * mem_small - 64);
}

#[test]
fn duplicate_heavy_values_are_handled() {
    // Many equal commission values (the zero spike) must not produce splits
    // inside runs of equal values.
    let mut records = generate(2_000, GeneratorConfig::default());
    for r in records.iter_mut().take(1_500) {
        r.numeric[1] = 0.0;
    }
    let (tree, _) = psprint(&records, 4);
    assert!(accuracy(&tree, &records) > 0.9);
}

#[test]
fn empty_input() {
    let (tree, _) = psprint(&[], 3);
    assert_eq!(tree.num_nodes(), 1);
}
