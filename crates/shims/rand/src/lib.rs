//! Offline stand-in for the `rand` crate (0.9-era API subset).
//!
//! The build container has no crate registry, so the workspace vendors the
//! small slice of `rand` it uses: [`rngs::StdRng`] seeded via
//! [`SeedableRng::seed_from_u64`], the [`Rng`] extension methods
//! `random_range` / `random_bool`, and [`seq::index::sample`] (uniform
//! index sampling without replacement).
//!
//! The generator is **xoshiro256\*\*** seeded through SplitMix64 — not the
//! ChaCha12 core of the real `StdRng`, so *sequences differ from upstream
//! rand*, but every consumer in this workspace only requires determinism
//! for a fixed seed, which this shim guarantees (it is pure integer
//! arithmetic, identical on every platform).
//!
//! ```
//! use rand::rngs::StdRng;
//! use rand::{Rng, SeedableRng};
//!
//! let mut a = StdRng::seed_from_u64(7);
//! let mut b = StdRng::seed_from_u64(7);
//! let xs: Vec<u64> = (0..4).map(|_| a.random_range(0..100)).collect();
//! let ys: Vec<u64> = (0..4).map(|_| b.random_range(0..100)).collect();
//! assert_eq!(xs, ys);
//! assert!(xs.iter().all(|&x| x < 100));
//! ```

/// Core pseudo-random generator interface: a source of `u64` words.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed (expanded through SplitMix64).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Ranges that [`Rng::random_range`] can sample from.
pub trait SampleRange<T> {
    /// Draw one uniform value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                // Multiply-shift bounded sampling; the modulo bias over a
                // 64-bit draw is < 2^-32 for all spans used here.
                let draw = rng.next_u64() as u128 % span;
                (self.start as u128 + draw) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range");
                let span = (end as u128).wrapping_sub(start as u128) + 1;
                let draw = rng.next_u64() as u128 % span;
                (start as u128 + draw) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                // 53 uniform mantissa bits in [0, 1).
                let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                (self.start as f64 + unit * (self.end as f64 - self.start as f64)) as $t
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// Convenience extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform draw from `range` (half-open or inclusive).
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw: `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256\*\* (Blackman &
    /// Vigna), seeded through SplitMix64. Deterministic and portable.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    /// Index sampling.
    pub mod index {
        use crate::{Rng, RngCore};

        /// Indices drawn by [`sample`]; iterate to consume them.
        #[derive(Debug, Clone)]
        pub struct IndexVec(Vec<usize>);

        impl IndexVec {
            /// Number of sampled indices.
            pub fn len(&self) -> usize {
                self.0.len()
            }

            /// Whether no indices were sampled.
            pub fn is_empty(&self) -> bool {
                self.0.is_empty()
            }

            /// The indices as a vector.
            pub fn into_vec(self) -> Vec<usize> {
                self.0
            }
        }

        impl IntoIterator for IndexVec {
            type Item = usize;
            type IntoIter = std::vec::IntoIter<usize>;
            fn into_iter(self) -> Self::IntoIter {
                self.0.into_iter()
            }
        }

        /// Sample `amount` distinct indices uniformly from `0..length`
        /// (partial Fisher–Yates; order is the draw order, as in `rand`).
        pub fn sample<R: RngCore + ?Sized>(
            rng: &mut R,
            length: usize,
            amount: usize,
        ) -> IndexVec {
            assert!(
                amount <= length,
                "cannot sample {amount} of {length} without replacement"
            );
            let mut pool: Vec<usize> = (0..length).collect();
            let mut out = Vec::with_capacity(amount);
            for i in 0..amount {
                let j = rng.random_range(i..length);
                pool.swap(i, j);
                out.push(pool[i]);
            }
            IndexVec(out)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }

        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    use super::RngCore;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: u8 = rng.random_range(0..5);
            assert!(v < 5);
            let f = rng.random_range(-2.0..3.0f64);
            assert!((-2.0..3.0).contains(&f));
            let i = rng.random_range(10..=10u64);
            assert_eq!(i, 10);
        }
    }

    #[test]
    fn random_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!((0..100).all(|_| !rng.random_bool(0.0)));
        assert!((0..100).all(|_| rng.random_bool(1.0)));
    }

    #[test]
    fn sample_without_replacement_is_distinct() {
        let mut rng = StdRng::seed_from_u64(3);
        let idx = crate::seq::index::sample(&mut rng, 50, 20).into_vec();
        assert_eq!(idx.len(), 20);
        let mut sorted = idx.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 20, "duplicates drawn");
        assert!(idx.iter().all(|&i| i < 50));
    }

    #[test]
    fn roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut buckets = [0u32; 10];
        for _ in 0..10_000 {
            buckets[rng.random_range(0..10usize)] += 1;
        }
        assert!(buckets.iter().all(|&b| (800..1200).contains(&b)), "{buckets:?}");
    }
}
