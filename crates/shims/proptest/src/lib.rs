//! Offline stand-in for the `proptest` crate.
//!
//! The build container has no crate registry, so the workspace vendors the
//! subset of proptest its property tests use: the [`proptest!`] macro over
//! `arg in strategy` bindings, [`ProptestConfig::with_cases`], integer /
//! float range strategies, [`any`], [`collection::vec`], tuple strategies,
//! and the `prop_assert*` macros.
//!
//! Differences from the real crate, acceptable for this workspace:
//!
//! * **No shrinking** — a failing case panics with the generated inputs
//!   printed, but is not minimized.
//! * **Deterministic seeding** — each test function derives its RNG seed
//!   from its own name, so failures reproduce exactly across runs (the real
//!   proptest persists failure seeds to a regression file instead).
//!
//! ```
//! use proptest::prelude::*;
//!
//! proptest! {
//!     #![proptest_config(ProptestConfig::with_cases(16))]
//!     #[test]
//!     fn addition_commutes(a in 0u64..1000, b in 0u64..1000) {
//!         prop_assert_eq!(a + b, b + a);
//!     }
//! }
//! # addition_commutes();
//! ```

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// The RNG handed to strategies by the [`proptest!`] runner.
pub struct TestRng(StdRng);

impl TestRng {
    /// Deterministic RNG for the named test (seed = FNV-1a of the name).
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng(StdRng::seed_from_u64(h))
    }

    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// A generator of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value: std::fmt::Debug;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.0.random_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.0.random_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.0.random_range(self.clone())
    }
}

/// String strategies are regexes in the real proptest. The shim supports the
/// one shape this workspace uses — `\PC{lo,hi}`, i.e. `lo..=hi` printable
/// characters — and rejects anything else loudly.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let body = self
            .strip_prefix("\\PC{")
            .and_then(|s| s.strip_suffix('}'))
            .unwrap_or_else(|| panic!("unsupported string strategy regex {self:?}"));
        let (lo, hi) = body
            .split_once(',')
            .and_then(|(a, b)| Some((a.parse::<usize>().ok()?, b.parse::<usize>().ok()?)))
            .unwrap_or_else(|| panic!("unsupported repetition in string strategy {self:?}"));
        let n = rng.0.random_range(lo..hi + 1);
        (0..n)
            .map(|_| {
                // Mix of printable ASCII and a few multibyte code points so
                // round-trip tests see non-trivial UTF-8.
                match rng.next_u64() % 8 {
                    0 => char::from_u32(0xA1 + (rng.next_u64() % 0x500) as u32).unwrap_or('ß'),
                    _ => (0x20 + (rng.next_u64() % 0x5F) as u8) as char,
                }
            })
            .collect()
    }
}

/// Types with a full-domain default strategy (see [`any`]).
pub trait Arbitrary: Sized + std::fmt::Debug {
    /// Draw one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Arbitrary bit patterns: exercises subnormals, infinities and NaN,
        // as the real proptest's full f64 domain does.
        f64::from_bits(rng.next_u64())
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<fn() -> T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The full-domain strategy for `T` (`any::<u64>()` etc.).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Admissible size arguments for [`vec`]: an exact `usize` or a range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi_exclusive: n + 1 }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi_exclusive: r.end }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange { lo: *r.start(), hi_exclusive: *r.end() + 1 }
        }
    }

    /// Strategy for vectors of `element` values with a size in `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `vec(element, size)` — the `proptest::collection::vec` entry point.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.rng_mut().random_range(self.size.lo..self.size.hi_exclusive);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    impl TestRng {
        pub(crate) fn rng_mut(&mut self) -> &mut rand::rngs::StdRng {
            &mut self.0
        }
    }
}

/// Everything a property-test file needs in scope.
pub mod prelude {
    pub use crate::{any, prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy};
}

/// Assert inside a property body (panics with the message on failure; the
/// runner prints the generated inputs).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*)
    };
}

/// Equality assert inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*)
    };
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running the body over `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { (<$crate::ProptestConfig as ::core::default::Default>::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..config.cases {
                    // Failures reproduce exactly: the RNG is seeded from the
                    // test name, so `case` identifies the failing inputs.
                    let _ = case;
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)*
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_bounded(x in 3u64..17, y in 0usize..4) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y < 4);
        }

        #[test]
        fn vec_sizes(v in crate::collection::vec(any::<u8>(), 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
        }

        #[test]
        fn exact_vec_size(v in crate::collection::vec(0u64..5, 3)) {
            prop_assert_eq!(v.len(), 3);
            prop_assert!(v.iter().all(|&x| x < 5));
        }

        #[test]
        fn tuples_compose(t in (any::<u32>(), crate::collection::vec(any::<u8>(), 0..3))) {
            let (_a, v) = t;
            prop_assert!(v.len() < 3);
        }
    }

    #[test]
    fn runs_are_deterministic() {
        let mut a = crate::TestRng::for_test("t");
        let mut b = crate::TestRng::for_test("t");
        let s = crate::collection::vec(crate::any::<u64>(), 0..9);
        for _ in 0..20 {
            assert_eq!(
                crate::Strategy::generate(&s, &mut a),
                crate::Strategy::generate(&s, &mut b)
            );
        }
    }
}
