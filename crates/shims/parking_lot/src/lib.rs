//! Offline stand-in for the `parking_lot` crate, backed by `std::sync`.
//!
//! The build container has no access to a crate registry, so the workspace
//! vendors the *subset* of the `parking_lot` API it actually uses:
//! [`Mutex`] / [`MutexGuard`] with panic-free (non-poisoning) locking, and
//! [`Condvar::wait_for`] returning a [`WaitTimeoutResult`]. Semantics match
//! the real crate for this subset; performance characteristics are those of
//! `std::sync`, which is irrelevant here because all *timing* in the
//! simulator is virtual.
//!
//! ```
//! let m = parking_lot::Mutex::new(1);
//! *m.lock() += 1;
//! assert_eq!(*m.lock(), 2);
//! ```

use std::ops::{Deref, DerefMut};
use std::time::Duration;

/// A mutual-exclusion lock. Unlike `std::sync::Mutex`, locking never
/// returns a poison error: a panic while holding the lock simply releases
/// it.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Create a mutex protecting `value`.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(self.0.lock().unwrap_or_else(|e| e.into_inner())))
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// RAII guard returned by [`Mutex::lock`]; releases the lock on drop.
///
/// The inner `Option` exists so [`Condvar::wait_for`] can temporarily move
/// the underlying std guard out while waiting; it is `Some` at all times
/// outside that window.
pub struct MutexGuard<'a, T: ?Sized>(Option<std::sync::MutexGuard<'a, T>>);

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.0.as_ref().expect("guard invariant")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_mut().expect("guard invariant")
    }
}

/// Result of a timed condition-variable wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// Whether the wait ended because the timeout elapsed (as opposed to a
    /// notification).
    pub fn timed_out(self) -> bool {
        self.0
    }
}

/// A condition variable paired with a [`Mutex`].
#[derive(Debug, Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    /// Create a condition variable.
    pub fn new() -> Self {
        Self::default()
    }

    /// Atomically release the guard's lock and wait, reacquiring the lock
    /// before returning (with or without a notification).
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.0.take().expect("guard invariant");
        let (inner, result) = match self.0.wait_timeout(inner, timeout) {
            Ok((g, r)) => (g, r),
            Err(e) => {
                let (g, r) = e.into_inner();
                (g, r)
            }
        };
        guard.0 = Some(inner);
        WaitTimeoutResult(result.timed_out())
    }

    /// Atomically release the guard's lock and wait (with no timeout)
    /// until notified, reacquiring the lock before returning. Like the
    /// real `parking_lot`, spurious wakeups are possible — callers must
    /// re-check their predicate in a loop.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("guard invariant");
        let inner = self.0.wait(inner).unwrap_or_else(|e| e.into_inner());
        guard.0 = Some(inner);
    }

    /// Wake all threads blocked on this condition variable.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }

    /// Wake one thread blocked on this condition variable.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(vec![1, 2]);
        m.lock().push(3);
        assert_eq!(*m.lock(), vec![1, 2, 3]);
        assert_eq!(m.into_inner(), vec![1, 2, 3]);
    }

    #[test]
    fn wait_for_times_out_without_notify() {
        let m = Mutex::new(());
        let c = Condvar::new();
        let mut g = m.lock();
        let r = c.wait_for(&mut g, Duration::from_millis(10));
        assert!(r.timed_out());
    }

    #[test]
    fn wait_for_wakes_on_notify() {
        let m = Arc::new(Mutex::new(false));
        let c = Arc::new(Condvar::new());
        let (m2, c2) = (Arc::clone(&m), Arc::clone(&c));
        let h = std::thread::spawn(move || {
            let mut g = m2.lock();
            while !*g {
                let r = c2.wait_for(&mut g, Duration::from_secs(5));
                assert!(!r.timed_out());
            }
        });
        std::thread::sleep(Duration::from_millis(20));
        *m.lock() = true;
        c.notify_all();
        h.join().unwrap();
    }
}
