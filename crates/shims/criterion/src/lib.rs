//! Offline stand-in for the `criterion` crate.
//!
//! The build container has no crate registry, so the workspace vendors the
//! subset of criterion its benches use: [`Criterion::bench_function`],
//! benchmark groups with [`BenchmarkGroup::bench_with_input`] /
//! [`BenchmarkGroup::throughput`], [`BenchmarkId`], [`black_box`] and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement is deliberately simple: each benchmark is warmed up once,
//! then timed over `sample_size` samples, and the per-iteration mean and
//! minimum are printed. No statistical analysis, HTML reports, or baseline
//! comparison — enough to compare orders of magnitude between revisions,
//! which is all this workspace's benches are used for.

use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benched code.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput annotation for a benchmark group (printed alongside timings).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier of the form `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Identifier combining a function name and a displayed parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

/// The timing loop handed to every benchmark closure.
pub struct Bencher {
    samples: usize,
    /// Per-sample durations of the most recent [`Bencher::iter`] run.
    results: Vec<Duration>,
}

impl Bencher {
    /// Time `f`, running it once as warm-up and then `sample_size` times.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f());
        self.results.clear();
        for _ in 0..self.samples {
            let t0 = Instant::now();
            black_box(f());
            self.results.push(t0.elapsed());
        }
    }
}

fn report(name: &str, results: &[Duration], throughput: Option<Throughput>) {
    if results.is_empty() {
        println!("{name:<48} (no samples)");
        return;
    }
    let total: Duration = results.iter().sum();
    let mean = total / results.len() as u32;
    let min = results.iter().min().copied().unwrap_or_default();
    let rate = match throughput {
        Some(Throughput::Elements(n)) => {
            format!("  {:>10.1} Melem/s", n as f64 / mean.as_secs_f64() / 1e6)
        }
        Some(Throughput::Bytes(n)) => {
            format!("  {:>10.1} MiB/s", n as f64 / mean.as_secs_f64() / (1 << 20) as f64)
        }
        None => String::new(),
    };
    println!(
        "{name:<48} mean {:>12?}  min {:>12?}{rate}",
        mean, min
    );
}

/// Top-level benchmark driver (shim for `criterion::Criterion`).
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) {
        let mut b = Bencher { samples: self.sample_size, results: Vec::new() };
        f(&mut b);
        report(name, &b.results, None);
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            throughput: None,
            _parent: std::marker::PhantomData,
        }
    }
}

/// A group of related benchmarks sharing sample-size and throughput
/// settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _parent: std::marker::PhantomData<&'a mut Criterion>,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Annotate subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one named benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) {
        let mut b = Bencher { samples: self.sample_size, results: Vec::new() };
        f(&mut b);
        report(&format!("{}/{}", self.name, name), &b.results, self.throughput);
    }

    /// Run one parameterized benchmark within the group.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) {
        let mut b = Bencher { samples: self.sample_size, results: Vec::new() };
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id.name), &b.results, self.throughput);
    }

    /// Close the group (provided for API compatibility).
    pub fn finish(self) {}
}

/// Collect benchmark functions into one named runner function.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            $(
                let mut c: $crate::Criterion = $config;
                $target(&mut c);
            )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = <$crate::Criterion as ::core::default::Default>::default();
            targets = $($target),+
        );
    };
}

/// Generate `main` running the given [`criterion_group!`] runners.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        let mut g = c.benchmark_group("grp");
        g.sample_size(3);
        g.throughput(Throughput::Elements(10));
        g.bench_with_input(BenchmarkId::new("param", 4), &4u64, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        g.finish();
    }

    criterion_group!(benches, quick);

    #[test]
    fn group_runner_runs() {
        benches();
    }

    criterion_group! {
        name = configured;
        config = Criterion::default().sample_size(2);
        targets = quick
    }

    #[test]
    fn configured_group_runs() {
        configured();
    }
}
