//! Ensemble configuration: everything the trainer and scheduler do is
//! gated through [`EnsembleConfig`].

use pdc_dnc::Strategy;
use pdc_pclouds::PcloudsConfig;

/// Configuration of one bagged-ensemble training run.
#[derive(Debug, Clone)]
pub struct EnsembleConfig {
    /// Number of trees B (≥ 1).
    pub trees: usize,
    /// Bootstrap-resample each tree's training set (bagging). With this
    /// off every tree trains on the original records — useful for the
    /// degenerate-identity contract: `trees == 1` with bootstrap off on
    /// the world group is byte-identical to plain [`pdc_pclouds::train`].
    pub bootstrap: bool,
    /// Root of the per-tree split seed streams (see
    /// [`crate::bootstrap::tree_seed`]).
    pub seed: u64,
    /// Per-rank resident-memory budget in bytes. The scheduler refuses to
    /// open a subgroup narrower than the width at which one tree's
    /// predicted residency (data shard + one small-task working set) fits
    /// the budget, queueing trees instead. `usize::MAX` disables the
    /// bound.
    pub memory_budget_bytes: usize,
    /// Fixed subgroup width for ablations (0 = let the scheduler choose
    /// from the budget and tree count). Widths below the budget's minimum
    /// feasible width are raised to it.
    pub subgroup_width: usize,
    /// Per-tree pCLOUDS configuration (cloud parameters, memory limit,
    /// comm schedule, recovery), applied unchanged inside each subgroup.
    pub base: PcloudsConfig,
    /// Divide-and-conquer strategy for each tree build.
    pub strategy: Strategy,
}

impl EnsembleConfig {
    /// Paper-scaled defaults for a training set of `n` records: 8 bagged
    /// trees, scheduler-chosen widths, unbounded memory budget.
    pub fn paper_scaled(n: u64) -> Self {
        EnsembleConfig {
            trees: 8,
            bootstrap: true,
            seed: 0xba66_ed5e,
            memory_budget_bytes: usize::MAX,
            subgroup_width: 0,
            base: PcloudsConfig::paper_scaled(n),
            strategy: Strategy::Mixed,
        }
    }
}
