//! The trained ensemble: an ordered list of member trees with
//! majority-vote prediction.

use pdc_cgm::wire::{DecodeResult, Wire};
use pdc_clouds::DecisionTree;
use pdc_datagen::{Record, NUM_CLASSES};

/// A bagged ensemble of decision trees. Prediction is a majority vote
/// over the members; ties break toward the lower class id, so the vote is
/// deterministic for any member order and count.
#[derive(Debug, Clone, PartialEq)]
pub struct EnsembleModel {
    /// Member trees, indexed by tree id.
    pub trees: Vec<DecisionTree>,
}

impl EnsembleModel {
    /// Majority-vote class of one record.
    pub fn predict(&self, r: &Record) -> u8 {
        let mut votes = [0usize; NUM_CLASSES];
        for t in &self.trees {
            votes[t.predict(r) as usize] += 1;
        }
        majority(&votes)
    }

    /// Number of member trees.
    pub fn size(&self) -> usize {
        self.trees.len()
    }
}

/// Winning index of a vote tally, ties toward the lower index.
pub(crate) fn majority(votes: &[usize; NUM_CLASSES]) -> u8 {
    let mut best = 0usize;
    for c in 1..NUM_CLASSES {
        if votes[c] > votes[best] {
            best = c;
        }
    }
    best as u8
}

impl Wire for EnsembleModel {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.trees.encode(buf);
    }

    fn decode(buf: &mut &[u8]) -> DecodeResult<Self> {
        Ok(EnsembleModel {
            trees: Vec::<DecisionTree>::decode(buf)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdc_clouds::DecisionTree;
    use pdc_datagen::{generate, GeneratorConfig};

    #[test]
    fn vote_ties_break_low() {
        // Two constant trees voting for different classes: 1-1 tie → 0.
        let zero = DecisionTree::single_leaf(vec![5, 1]);
        let one = DecisionTree::single_leaf(vec![1, 5]);
        let m = EnsembleModel {
            trees: vec![zero, one],
        };
        let r = generate(1, GeneratorConfig::default())[0];
        assert_eq!(m.predict(&r), 0);
    }

    #[test]
    fn wire_round_trip() {
        let m = EnsembleModel {
            trees: vec![
                DecisionTree::single_leaf(vec![3, 1]),
                DecisionTree::single_leaf(vec![0, 9]),
            ],
        };
        let back = EnsembleModel::from_bytes(&m.to_bytes()).unwrap();
        assert_eq!(m, back);
    }
}
