//! Bagged-tree ensemble training on subgroups of the simulated machine.
//!
//! The paper's mixed-parallel phase divides processors into subgroups and
//! assigns subtasks to subgroups by cost; this crate composes that with
//! task parallelism **across trees**: B bootstrap-resampled trees are
//! packed onto [`pdc_cgm::Group`] subgroups by an LPT scheduler under a
//! per-rank memory budget, and each subgroup runs the complete, unmodified
//! `pclouds` pipeline with its collectives scoped to the subgroup (see
//! [`pdc_cgm::Proc::scoped`]).
//!
//! Three properties are load-bearing and regression-tested:
//!
//! * **Split seed streams.** Tree `t` bootstraps its training set from a
//!   SplitMix64 stream keyed on `seed ⊕ mix(t)` ([`tree_seed`]), so the
//!   records a tree trains on depend only on the ensemble seed and the
//!   tree id — never on where or when the scheduler places the tree.
//! * **Placement-invariant trees.** Combined with the canonical form of
//!   assembled trees, every member tree's bytes are invariant to the
//!   subgroup width and the scheduling order.
//! * **Degenerate identity.** `B = 1` with bootstrap off on the world
//!   group is byte-identical to plain [`pdc_pclouds::train`].
//!
//! Memory-bounded scheduling (after Eyraud-Dubois et al., *Parallel
//! scheduling of task trees with limited memory*): a tree trained on a
//! width-`w` subgroup keeps `⌈n/w⌉` records resident per member rank plus
//! at most one small task's working set; the scheduler only opens as many
//! concurrent subgroups as keep that prediction within the configured
//! budget and **queues** the remaining trees instead of co-scheduling
//! them. Residency is tracked on the existing `dnc.resident_bytes` gauge,
//! so the measured peak can be checked against the budget after a run.

#![warn(missing_docs)]

pub mod bootstrap;
pub mod config;
pub mod model;
pub mod schedule;
pub mod trainer;

pub use bootstrap::{bootstrap_sample, tree_seed};
pub use config::EnsembleConfig;
pub use model::EnsembleModel;
pub use schedule::{plan_schedule, predicted_resident_bytes, tree_cost, EnsembleSchedule};
pub use trainer::{train_ensemble, train_ensemble_on, EnsembleOutput};
