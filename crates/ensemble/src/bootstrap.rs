//! Per-tree bootstrap resampling from split seed streams.
//!
//! Every tree draws its training set from an independent deterministic
//! stream keyed on the ensemble seed and the tree id. The draw is a pure
//! function of `(seed, tree, records)` — the subgroup a tree lands on and
//! the position in its queue never enter the stream — which is what makes
//! member trees bit-identical across schedules (the SPMD-safety half of
//! the argument; the other half is the canonical form of assembled trees).

use pdc_datagen::Record;

/// Golden-ratio increment of SplitMix64.
const GOLDEN: u64 = 0x9e37_79b9_7f4a_7c15;

/// SplitMix64 finalizer: a well-mixed 64-bit hash.
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(GOLDEN);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The split seed stream root of tree `tree`: `seed ⊕ mix(tree)`. Mixing
/// the tree id before the xor keeps neighboring tree ids from producing
/// correlated streams.
pub fn tree_seed(seed: u64, tree: usize) -> u64 {
    seed ^ mix64(tree as u64)
}

/// Bootstrap resample for one tree: `records.len()` draws with
/// replacement, indexed by successive SplitMix64 outputs of the tree's
/// seed stream. Deterministic in `(seed, tree)`; independent of machine
/// width and scheduling.
pub fn bootstrap_sample(records: &[Record], seed: u64, tree: usize) -> Vec<Record> {
    let n = records.len();
    assert!(n > 0, "cannot bootstrap an empty record set");
    let mut state = tree_seed(seed, tree);
    (0..n)
        .map(|_| {
            state = state.wrapping_add(GOLDEN);
            let draw = mix64(state);
            // Modulo bias is ~n/2^64 — irrelevant at any dataset size here.
            records[(draw % n as u64) as usize]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdc_datagen::{generate, GeneratorConfig};

    #[test]
    fn deterministic_and_tree_dependent() {
        let records = generate(500, GeneratorConfig::default());
        let a = bootstrap_sample(&records, 42, 0);
        let b = bootstrap_sample(&records, 42, 0);
        let c = bootstrap_sample(&records, 42, 1);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.len(), records.len());
    }

    #[test]
    fn resamples_with_replacement() {
        let records = generate(1_000, GeneratorConfig::default());
        let boot = bootstrap_sample(&records, 7, 3);
        // A bootstrap of n draws covers ~63% of distinct source records;
        // far fewer distinct values than n proves replacement happened.
        let mut seen: Vec<Vec<u8>> = boot
            .iter()
            .map(pdc_cgm::wire::Wire::to_bytes)
            .collect();
        seen.sort();
        seen.dedup();
        assert!(seen.len() < records.len());
        assert!(seen.len() > records.len() / 2);
    }
}
