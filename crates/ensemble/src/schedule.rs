//! Memory-bounded LPT scheduling of trees onto processor subgroups.
//!
//! The scheduler is a pure function of the machine width, the predicted
//! tree costs, the config and the shared fault plan — every rank derives
//! the identical schedule without communicating, the same trick the
//! divide-and-conquer recovery path uses. Placement follows the policy of
//! Eyraud-Dubois et al. (*Parallel scheduling of task trees with limited
//! memory*): parallelism is only widened while each open subgroup still
//! fits one tree's predicted residency in the per-rank budget; everything
//! else **queues** on the open subgroups rather than co-scheduling.

use pdc_cgm::{FaultPlan, Group};
use pdc_datagen::Record;
use pdc_dnc::lpt_assign;
use pdc_pario::Rec;

use crate::config::EnsembleConfig;

/// Predicted cost of building one tree over `n` records — the same
/// `n · log₂ n` model the pipeline charges for a root task.
pub fn tree_cost(n: usize) -> f64 {
    let n = (n.max(2)) as f64;
    n * n.log2()
}

/// Predicted per-rank resident bytes of one tree trained on a width-`w`
/// subgroup: the rank's round-robin data shard plus at most one
/// locally-solved small task's working set. This is an upper bound on what
/// the `dnc.resident_bytes` gauge can reach, because a rank solves small
/// tasks one at a time.
pub fn predicted_resident_bytes(n: usize, w: usize, cfg: &EnsembleConfig) -> usize {
    let shard = n.div_ceil(w.max(1)) * Record::ENCODED_BYTES;
    let small =
        cfg.base.small_task_max_records(n as u64) as usize * Record::ENCODED_BYTES;
    shard + small
}

/// The complete placement of an ensemble run.
#[derive(Debug, Clone)]
pub struct EnsembleSchedule {
    /// The open subgroups (disjoint; need not cover the machine when a
    /// fixed width leaves a remainder idle).
    pub subgroups: Vec<Group>,
    /// Primary per-subgroup tree queues (LPT order), indexed like
    /// `subgroups`.
    pub queues: Vec<Vec<usize>>,
    /// Recovery queues: trees whose primary subgroup contains a failed
    /// rank, reassigned to surviving subgroups.
    pub retrains: Vec<Vec<usize>>,
    /// Whether each subgroup contains a rank the fault plan marks failed.
    pub spoiled: Vec<bool>,
    /// Narrowest width the memory budget admits.
    pub min_width: usize,
}

impl EnsembleSchedule {
    /// The trees subgroup `g` actually executes, in order: its primary
    /// queue (empty when spoiled) followed by its recovery queue.
    pub fn execution_queue(&self, g: usize) -> Vec<usize> {
        let mut q = if self.spoiled[g] {
            Vec::new()
        } else {
            self.queues[g].clone()
        };
        q.extend(self.retrains[g].iter().copied());
        q
    }

    /// The subgroup that actually trains `tree` (its recovery site when
    /// the primary site is spoiled).
    pub fn site_of(&self, tree: usize) -> usize {
        for (g, r) in self.retrains.iter().enumerate() {
            if r.contains(&tree) {
                return g;
            }
        }
        for (g, q) in self.queues.iter().enumerate() {
            if q.contains(&tree) && !self.spoiled[g] {
                return g;
            }
        }
        panic!("tree {tree} has no training site");
    }
}

/// Plan the placement of `costs.len()` trees over `n` records each on a
/// `p`-rank machine. Deterministic; see the module docs.
///
/// Panics when even a machine-wide subgroup cannot fit one tree in the
/// memory budget, or when every subgroup contains a failed rank.
pub fn plan_schedule(
    p: usize,
    costs: &[f64],
    n: usize,
    cfg: &EnsembleConfig,
    faults: &FaultPlan,
) -> EnsembleSchedule {
    let trees = costs.len();
    assert!(trees >= 1, "an ensemble needs at least one tree");
    assert!(p >= 1);

    // Memory bound: the narrowest subgroup width whose predicted per-rank
    // residency fits the budget.
    let min_width = (1..=p)
        .find(|&w| predicted_resident_bytes(n, w, cfg) <= cfg.memory_budget_bytes)
        .unwrap_or_else(|| {
            panic!(
                "memory budget of {} bytes cannot fit one tree even on all {p} ranks \
                 (predicted {} bytes/rank)",
                cfg.memory_budget_bytes,
                predicted_resident_bytes(n, p, cfg)
            )
        });

    let world = Group::world(p);
    let (subgroups, queues) = if cfg.subgroup_width > 0 {
        // Fixed-width ablation mode: contiguous subgroups of exactly the
        // requested width (raised to the budget's minimum); a remainder
        // narrower than the width stays idle.
        let w = cfg.subgroup_width.max(min_width).min(p);
        let k = (p / w).clamp(1, trees);
        let subgroups: Vec<Group> = (0..k)
            .map(|g| Group::new((g * w..(g + 1) * w).collect()))
            .collect();
        let owners = lpt_assign(costs, k);
        (subgroups, queues_from_owners(&owners, costs, k))
    } else {
        // Budget-driven mode: open as many subgroups as the budget and
        // tree count admit, then shrink until every cost-proportional
        // subgroup is at least the minimum width (k = 1 always is).
        let mut k = (p / min_width).clamp(1, trees);
        loop {
            let owners = lpt_assign(costs, k);
            let queues = queues_from_owners(&owners, costs, k);
            let loads: Vec<f64> = queues
                .iter()
                .map(|q| q.iter().map(|&t| costs[t]).sum())
                .collect();
            let subgroups = world.split_k_by_cost(&loads);
            if subgroups.iter().all(|s| s.size() >= min_width) || k == 1 {
                break (subgroups, queues);
            }
            k -= 1;
        }
    };

    // Fail-stop recovery, derived identically everywhere from the shared
    // plan: subgroups containing a failed rank train nothing; their trees
    // requeue on the surviving subgroups, LPT over current loads.
    let spoiled: Vec<bool> = subgroups
        .iter()
        .map(|s| s.members().iter().any(|&r| faults.is_failed(r)))
        .collect();
    let mut retrains = vec![Vec::new(); subgroups.len()];
    let orphaned: Vec<usize> = {
        let mut v: Vec<usize> = spoiled
            .iter()
            .enumerate()
            .filter(|(_, &sp)| sp)
            .flat_map(|(g, _)| queues[g].iter().copied())
            .collect();
        v.sort_by(|&a, &b| costs[b].partial_cmp(&costs[a]).unwrap().then(a.cmp(&b)));
        v
    };
    if !orphaned.is_empty() {
        let survivors: Vec<usize> = (0..subgroups.len()).filter(|&g| !spoiled[g]).collect();
        assert!(
            !survivors.is_empty(),
            "every subgroup contains a failed rank; nothing can recover the ensemble"
        );
        let mut load: Vec<f64> = survivors
            .iter()
            .map(|&g| queues[g].iter().map(|&t| costs[t]).sum())
            .collect();
        for t in orphaned {
            let (i, _) = load
                .iter()
                .enumerate()
                .min_by(|(a, la), (b, lb)| la.partial_cmp(lb).unwrap().then(a.cmp(b)))
                .unwrap();
            retrains[survivors[i]].push(t);
            load[i] += costs[t];
        }
    }

    EnsembleSchedule {
        subgroups,
        queues,
        retrains,
        spoiled,
        min_width,
    }
}

/// Group an LPT owner vector into per-subgroup queues, each ordered by
/// decreasing cost (ties to the lower tree id) — the order LPT dispatches.
fn queues_from_owners(owners: &[usize], costs: &[f64], k: usize) -> Vec<Vec<usize>> {
    let mut queues: Vec<Vec<usize>> = vec![Vec::new(); k];
    let mut order: Vec<usize> = (0..owners.len()).collect();
    order.sort_by(|&a, &b| costs[b].partial_cmp(&costs[a]).unwrap().then(a.cmp(&b)));
    for t in order {
        queues[owners[t]].push(t);
    }
    queues
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> EnsembleConfig {
        EnsembleConfig::paper_scaled(10_000)
    }

    #[test]
    fn unbounded_budget_opens_one_subgroup_per_tree() {
        let costs = vec![tree_cost(10_000); 4];
        let s = plan_schedule(8, &costs, 10_000, &cfg(), &FaultPlan::default());
        assert_eq!(s.subgroups.len(), 4);
        assert_eq!(s.min_width, 1);
        assert!(s.queues.iter().all(|q| q.len() == 1));
        let total: usize = s.subgroups.iter().map(Group::size).sum();
        assert_eq!(total, 8);
    }

    #[test]
    fn tight_budget_queues_trees_instead_of_co_scheduling() {
        let mut c = cfg();
        // Budget fits one tree only when at least 4 ranks share the shard.
        c.memory_budget_bytes = predicted_resident_bytes(10_000, 4, &c);
        let costs = vec![tree_cost(10_000); 8];
        let s = plan_schedule(8, &costs, 10_000, &c, &FaultPlan::default());
        assert_eq!(s.min_width, 4);
        assert!(s.subgroups.len() <= 2, "budget admits at most two subgroups");
        assert!(s.subgroups.iter().all(|g| g.size() >= 4));
        // All 8 trees still place: the budget forces queueing, not drops.
        let placed: usize = s.queues.iter().map(Vec::len).sum();
        assert_eq!(placed, 8);
        assert!(s.queues.iter().any(|q| q.len() >= 4), "trees queue");
    }

    #[test]
    fn fixed_width_mode_builds_exact_widths() {
        let mut c = cfg();
        c.subgroup_width = 3;
        let costs = vec![tree_cost(5_000); 5];
        let s = plan_schedule(8, &costs, 5_000, &c, &FaultPlan::default());
        assert_eq!(s.subgroups.len(), 2, "8 / 3 = 2 subgroups, 2 ranks idle");
        assert!(s.subgroups.iter().all(|g| g.size() == 3));
    }

    #[test]
    fn failed_rank_moves_trees_to_survivors() {
        let mut plan = FaultPlan::default();
        plan.failed = vec![1];
        let costs = vec![tree_cost(4_000); 4];
        let mut c = cfg();
        c.subgroup_width = 2;
        let s = plan_schedule(8, &costs, 4_000, &c, &plan);
        assert_eq!(s.spoiled, vec![true, false, false, false]);
        assert!(s.execution_queue(0).is_empty());
        let recovered: usize = s.retrains.iter().map(Vec::len).sum();
        assert_eq!(recovered, s.queues[0].len());
        for t in 0..4 {
            assert!(!s.spoiled[s.site_of(t)]);
        }
    }

    #[test]
    #[should_panic(expected = "memory budget")]
    fn impossible_budget_panics() {
        let mut c = cfg();
        c.memory_budget_bytes = 16;
        plan_schedule(4, &[tree_cost(1_000)], 1_000, &c, &FaultPlan::default());
    }
}
