//! The ensemble training driver: stage per-tree bootstrap data, run one
//! SPMD pass where every subgroup drains its tree queue, and assemble the
//! member trees.

use pdc_cgm::{resolve_series, Cluster, RunOutput};
use pdc_datagen::Record;
use pdc_dnc::DncReport;
use pdc_pario::{DiskFarm, Rec};
use pdc_pclouds::{load_dataset, train_in_group, RootInfo, SharedBuild};

use crate::bootstrap::{bootstrap_sample, tree_seed};
use crate::config::EnsembleConfig;
use crate::model::EnsembleModel;
use crate::schedule::{plan_schedule, tree_cost, EnsembleSchedule};

/// Everything one ensemble training run produces.
pub struct EnsembleOutput {
    /// The trained ensemble (trees indexed by tree id, every one in
    /// canonical form).
    pub model: EnsembleModel,
    /// Per-rank virtual-time results: one divide-and-conquer report per
    /// tree the rank's subgroup trained, in execution order.
    pub run: RunOutput<Vec<DncReport>>,
    /// The placement the scheduler chose.
    pub schedule: EnsembleSchedule,
}

impl EnsembleOutput {
    /// Parallel runtime of the whole ensemble in simulated seconds (the
    /// makespan over all subgroups' queues).
    pub fn runtime(&self) -> f64 {
        self.run.makespan()
    }

    /// Measured peak of the `dnc.resident_bytes` gauge per rank. Empty
    /// unless the cluster was configured with gauges enabled.
    pub fn peak_resident_bytes(&self) -> Vec<f64> {
        self.run
            .stats
            .iter()
            .map(|s| {
                resolve_series(&s.gauges)
                    .into_iter()
                    .find(|g| g.name == "dnc.resident_bytes")
                    .map_or(0.0, |g| g.peak())
            })
            .collect()
    }
}

/// One tree's staged training state: a subgroup-local farm holding its
/// (possibly bootstrapped) records plus the shared build arena.
struct Staged {
    farm: DiskFarm,
    build: SharedBuild,
    root: RootInfo,
}

/// Train a bagged ensemble of `cfg.trees` trees over `records` on
/// `cluster`. The machine is partitioned into subgroups by
/// [`plan_schedule`]; each subgroup trains its queue of trees one at a
/// time with the whole pCLOUDS pipeline scoped to the subgroup. Member
/// trees are bit-identical for any subgroup width and scheduling order
/// (see the crate docs for the argument).
pub fn train_ensemble_on(
    cluster: &Cluster,
    records: &[Record],
    cfg: &EnsembleConfig,
) -> EnsembleOutput {
    assert!(cfg.trees >= 1, "an ensemble needs at least one tree");
    assert!(!records.is_empty(), "cannot train on an empty record set");
    let p = cluster.nprocs();
    let n = records.len();
    let costs: Vec<f64> = (0..cfg.trees).map(|_| tree_cost(n)).collect();
    let schedule = plan_schedule(p, &costs, n, cfg, &cluster.config().faults);

    // Stage every tree once, on the subgroup that actually trains it.
    // Staging is uncharged, like the initial dataset distribution the
    // paper assumes. Each tree gets its own subgroup-local farm, so
    // queued trees on one subgroup never collide on node files.
    let staged: Vec<Staged> = (0..cfg.trees)
        .map(|t| {
            let site = schedule.site_of(t);
            let width = schedule.subgroups[site].size();
            let farm = DiskFarm::in_memory(width);
            let (data, sample_seed) = if cfg.bootstrap {
                (
                    bootstrap_sample(records, cfg.seed, t),
                    cfg.base.clouds.sample_seed ^ tree_seed(cfg.seed, t),
                )
            } else {
                (records.to_vec(), cfg.base.clouds.sample_seed)
            };
            let root = load_dataset(&farm, &data, cfg.base.clouds.sample_size, sample_seed);
            let build = SharedBuild::new(width, root.counts.clone(), root.sample.clone());
            Staged { farm, build, root }
        })
        .collect();

    let run = cluster.run(|proc| {
        let me = proc.rank();
        let mut reports = Vec::new();
        for (g, sub) in schedule.subgroups.iter().enumerate() {
            if !sub.contains(me) {
                continue;
            }
            // Ranks of a spoiled subgroup sit out the run: the failure is
            // derived from the shared fault plan at schedule time, so no
            // communication (and no waiting on the failed rank) happens.
            for t in schedule.execution_queue(g) {
                let st = &staged[t];
                // The tree's data shard is resident on this rank for the
                // duration of the build; small-task residency inside the
                // pipeline stacks on top via the same gauge.
                let local = sub.local(me).expect("member rank");
                let shard = (shard_records(st.root.n() as usize, sub.size(), local)
                    * Record::ENCODED_BYTES) as f64;
                if proc.gauges_enabled() {
                    proc.gauge_delta("dnc.resident_bytes", proc.clock(), shard);
                }
                let report = train_in_group(
                    proc,
                    sub,
                    &st.farm,
                    &st.build,
                    &st.root,
                    &cfg.base,
                    cfg.strategy,
                );
                if proc.gauges_enabled() {
                    proc.gauge_delta("dnc.resident_bytes", proc.clock(), -shard);
                }
                reports.push(report);
            }
            break;
        }
        reports
    });

    let trees = staged.iter().map(|s| s.build.assemble()).collect();
    EnsembleOutput {
        model: EnsembleModel { trees },
        run,
        schedule,
    }
}

/// Convenience wrapper mirroring [`pdc_pclouds::train_in_memory`]: build a
/// `p`-rank cluster and train the ensemble on it.
pub fn train_ensemble(records: &[Record], p: usize, cfg: &EnsembleConfig) -> EnsembleOutput {
    let cluster = Cluster::new(p);
    train_ensemble_on(&cluster, records, cfg)
}

/// Records rank `local` of a width-`w` farm receives from a round-robin
/// deal of `n` records.
fn shard_records(n: usize, w: usize, local: usize) -> usize {
    if local >= n {
        0
    } else {
        (n - local).div_ceil(w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_records_sums_to_n() {
        for (n, w) in [(10, 3), (7, 8), (1, 1), (100, 4)] {
            let total: usize = (0..w).map(|l| shard_records(n, w, l)).sum();
            assert_eq!(total, n, "n={n} w={w}");
        }
    }
}
