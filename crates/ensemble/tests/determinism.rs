//! The determinism contract of the ensemble trainer:
//!
//! * every member tree's bytes are invariant to the subgroup width and the
//!   scheduling order (widths {1, 2, 4} × B ∈ {1, 4, 8});
//! * B = 1 with bootstrap off on the world group is byte-identical to
//!   plain `pclouds::train`.

use pdc_cgm::wire::Wire;
use pdc_datagen::{generate, GeneratorConfig};
use pdc_ensemble::EnsembleConfig;
use pdc_pclouds::train_in_memory;

fn quick_config(n: u64) -> EnsembleConfig {
    let mut cfg = EnsembleConfig::paper_scaled(n);
    cfg.base.clouds.q_root = 100;
    cfg.base.clouds.sample_size = 300;
    cfg
}

#[test]
fn member_trees_invariant_to_width_and_scheduling() {
    let records = generate(1_500, GeneratorConfig::default());
    let p = 8;
    for trees in [1usize, 4, 8] {
        let mut reference: Option<Vec<Vec<u8>>> = None;
        for width in [1usize, 2, 4] {
            let mut cfg = quick_config(records.len() as u64);
            cfg.trees = trees;
            cfg.subgroup_width = width;
            let out = pdc_ensemble::train_ensemble(&records, p, &cfg);
            assert_eq!(out.model.size(), trees);
            let bytes: Vec<Vec<u8>> =
                out.model.trees.iter().map(|t| t.to_bytes()).collect();
            match &reference {
                None => reference = Some(bytes),
                Some(want) => assert_eq!(
                    want, &bytes,
                    "B={trees}: tree bytes changed at subgroup width {width}"
                ),
            }
        }
        // The scheduler-chosen placement (different subgroup count, widths
        // and queue order) must still produce the same trees.
        let mut cfg = quick_config(records.len() as u64);
        cfg.trees = trees;
        cfg.subgroup_width = 0;
        let out = pdc_ensemble::train_ensemble(&records, p, &cfg);
        let bytes: Vec<Vec<u8>> = out.model.trees.iter().map(|t| t.to_bytes()).collect();
        assert_eq!(reference.unwrap(), bytes, "B={trees}: scheduler placement");
    }
}

#[test]
fn single_tree_on_world_group_matches_plain_train() {
    let records = generate(2_000, GeneratorConfig::default());
    let p = 4;
    let mut cfg = quick_config(records.len() as u64);
    cfg.trees = 1;
    cfg.bootstrap = false;
    let ens = pdc_ensemble::train_ensemble(&records, p, &cfg);
    assert_eq!(ens.schedule.subgroups.len(), 1);
    assert_eq!(ens.schedule.subgroups[0].size(), p);

    let plain = train_in_memory(&records, p, &cfg.base);
    assert_eq!(
        ens.model.trees[0].to_bytes(),
        plain.tree.to_bytes(),
        "B=1 ensemble tree differs from plain pclouds::train"
    );
    // The scoped world group adds no charges: even the virtual makespan
    // is bit-identical.
    assert_eq!(ens.runtime().to_bits(), plain.runtime().to_bits());
}

#[test]
fn bootstrap_trees_differ_from_each_other() {
    let records = generate(1_500, GeneratorConfig::default());
    let mut cfg = quick_config(records.len() as u64);
    cfg.trees = 4;
    let out = pdc_ensemble::train_ensemble(&records, 4, &cfg);
    let distinct: std::collections::HashSet<Vec<u8>> = out
        .model
        .trees
        .iter()
        .map(|t| t.to_bytes())
        .collect();
    assert!(
        distinct.len() > 1,
        "bootstrap resampling should diversify the members"
    );
}
