//! Bagging must earn its keep: on noisy training data evaluated against a
//! clean holdout, the ensemble beats the single tree on at least 8 of the
//! 10 SLIQ generator functions.

use pdc_clouds::{accuracy_of, holdout_pair};
use pdc_datagen::ALL_FUNCTIONS;
use pdc_ensemble::EnsembleConfig;
use pdc_pclouds::train_in_memory;

#[test]
fn ensemble_beats_single_tree_on_most_sliq_functions() {
    let (n_train, n_test, noise) = (2_000usize, 2_000usize, 0.10f64);
    let mut wins = 0;
    let mut report = Vec::new();
    for (i, f) in ALL_FUNCTIONS.iter().enumerate() {
        let (train, holdout) = holdout_pair(*f, n_train, n_test, noise);
        let mut cfg = EnsembleConfig::paper_scaled(n_train as u64);
        cfg.base.clouds.q_root = 100;
        cfg.base.clouds.sample_size = 300;
        cfg.trees = 8;
        let single = train_in_memory(&train, 4, &cfg.base);
        let ens = pdc_ensemble::train_ensemble(&train, 8, &cfg);
        let acc_single = accuracy_of(|r| single.tree.predict(r), &holdout);
        let acc_ensemble = accuracy_of(|r| ens.model.predict(r), &holdout);
        if acc_ensemble > acc_single {
            wins += 1;
        }
        report.push(format!(
            "f{}: single {acc_single:.4}, ensemble {acc_ensemble:.4}",
            i + 1
        ));
    }
    assert!(
        wins >= 8,
        "ensemble won only {wins}/10 functions:\n{}",
        report.join("\n")
    );
}
