//! The memory budget is respected in measurement, not just in prediction:
//! with gauges on, every rank's measured `dnc.resident_bytes` peak stays
//! within the configured per-rank budget.

use pdc_cgm::{Cluster, MachineConfig};
use pdc_datagen::{generate, GeneratorConfig};
use pdc_ensemble::{predicted_resident_bytes, train_ensemble_on, EnsembleConfig};

#[test]
fn measured_peak_resident_bytes_stays_within_budget() {
    let records = generate(1_500, GeneratorConfig::default());
    let p = 8;
    let mut cfg = EnsembleConfig::paper_scaled(records.len() as u64);
    cfg.base.clouds.q_root = 100;
    cfg.base.clouds.sample_size = 300;
    cfg.trees = 6;
    // A budget tight enough to force width ≥ 2 (so trees queue rather
    // than spreading one per rank), but feasible.
    cfg.memory_budget_bytes = predicted_resident_bytes(records.len(), 2, &cfg);

    let mut mc = MachineConfig::default();
    mc.gauges = true;
    let out = train_ensemble_on(&Cluster::with_config(p, mc), &records, &cfg);

    assert_eq!(out.schedule.min_width, 2);
    assert!(out.schedule.subgroups.iter().all(|g| g.size() >= 2));

    let peaks = out.peak_resident_bytes();
    assert_eq!(peaks.len(), p);
    assert!(
        peaks.iter().any(|&b| b > 0.0),
        "gauges were on; some rank must have recorded residency"
    );
    for (rank, &peak) in peaks.iter().enumerate() {
        assert!(
            peak <= cfg.memory_budget_bytes as f64,
            "rank {rank}: measured peak {peak} bytes exceeds budget {}",
            cfg.memory_budget_bytes
        );
    }
}
