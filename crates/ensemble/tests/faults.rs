//! Fault-recovery stress test: a failed rank inside one subgroup spoils
//! only that subgroup's trees; the scheduler retrains them on surviving
//! subgroups and the recovered ensemble matches the zero-fault ensemble.

use pdc_cgm::wire::Wire;
use pdc_cgm::{Cluster, FaultPlan, MachineConfig};
use pdc_datagen::{generate, GeneratorConfig};
use pdc_ensemble::{train_ensemble_on, EnsembleConfig};

fn quick_config(n: u64) -> EnsembleConfig {
    let mut cfg = EnsembleConfig::paper_scaled(n);
    cfg.base.clouds.q_root = 100;
    cfg.base.clouds.sample_size = 300;
    cfg.trees = 6;
    cfg.subgroup_width = 2;
    cfg
}

#[test]
fn failed_rank_spoils_one_subgroup_and_recovery_matches_zero_fault_run() {
    let records = generate(1_500, GeneratorConfig::default());
    let p = 8;
    let cfg = quick_config(records.len() as u64);

    let healthy = train_ensemble_on(&Cluster::new(p), &records, &cfg);
    assert!(healthy.schedule.spoiled.iter().all(|&s| !s));

    let mut mc = MachineConfig::default();
    mc.faults = FaultPlan {
        failed: vec![1],
        ..FaultPlan::default()
    };
    let faulty = train_ensemble_on(&Cluster::with_config(p, mc), &records, &cfg);

    // Rank 1 sits in the first width-2 subgroup; exactly that subgroup is
    // spoiled, trains nothing, and its whole primary queue reappears in
    // the survivors' recovery queues.
    assert_eq!(faulty.schedule.spoiled, vec![true, false, false, false]);
    assert!(faulty.schedule.execution_queue(0).is_empty());
    let recovered: usize = faulty.schedule.retrains.iter().map(Vec::len).sum();
    assert_eq!(recovered, faulty.schedule.queues[0].len());
    assert!(recovered > 0, "the spoiled subgroup owned at least one tree");

    // Because trees are seed-deterministic and placement-invariant, the
    // recovered ensemble is byte-identical to the zero-fault one.
    assert_eq!(
        healthy.model.to_bytes(),
        faulty.model.to_bytes(),
        "recovered ensemble diverged from the zero-fault ensemble"
    );
}
