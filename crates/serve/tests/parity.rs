//! Prediction-parity property tests: every compiled serving layout must be
//! **bit-identical** to the pointer tree on every record — across trees
//! trained on all ten SLIQ generator functions, across randomly grown
//! trees with random records, and across adversarial edge shapes
//! (single-leaf trees, maximum-depth chains, categorical-only splits).

use pdc_clouds::{CloudsParams, DecisionTree, Splitter};
use pdc_datagen::record::{CATEGORICAL_CARDINALITY, NUM_CATEGORICAL, NUM_NUMERIC};
use pdc_datagen::{generate, ClassifyFn, GeneratorConfig, Record, ALL_FUNCTIONS};
use pdc_pclouds::{train_in_memory, PcloudsConfig};
use pdc_serve::{assert_equivalent, Layout, Predictor, ALL_LAYOUTS};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Check all layouts against the pointer tree record by record, with a
/// diagnostic that names the layout and record on divergence.
fn check_parity(tree: &DecisionTree, records: &[Record]) {
    assert_equivalent(tree, records);
    for layout in ALL_LAYOUTS {
        let model = layout.compile(tree);
        for (i, r) in records.iter().enumerate() {
            assert_eq!(
                model.predict(r),
                tree.predict(r),
                "layout {} diverges from the tree on record {i}: {r:?}",
                layout.name()
            );
        }
    }
}

/// A small-but-real training run: reduced interval counts and sample so
/// each function trains in well under a second.
fn small_config() -> PcloudsConfig {
    let mut config = PcloudsConfig::default();
    config.clouds = CloudsParams {
        q_root: 200,
        q_min: 10,
        sample_size: 400,
        ..CloudsParams::default()
    };
    config
}

#[test]
fn trained_trees_agree_on_all_sliq_functions() {
    for function in ALL_FUNCTIONS {
        let gen = GeneratorConfig {
            function,
            noise: 0.05,
            seed: 0xF00D ^ function.index() as u64,
        };
        let train = generate(2_000, gen);
        let out = train_in_memory(&train, 2, &small_config());
        // Held-out records from a different seed, plus the training set
        // itself, so both seen and unseen regions of the space are covered.
        let test = generate(1_000, GeneratorConfig { seed: gen.seed ^ 0xBEEF, ..gen });
        check_parity(&out.tree, &train);
        check_parity(&out.tree, &test);
    }
}

/// Grow a random tree: repeatedly split a random leaf with a random
/// numeric or categorical splitter until `splits` internal nodes exist.
fn random_tree(rng: &mut StdRng, splits: usize) -> DecisionTree {
    let mut tree = DecisionTree::single_leaf(vec![1, 1]);
    let mut leaves = vec![0usize];
    for _ in 0..splits {
        let pick = rng.random_range(0..leaves.len());
        let leaf = leaves.swap_remove(pick);
        let splitter = random_splitter(rng);
        let (l, r) = tree.split_leaf(
            leaf,
            splitter,
            vec![rng.random_range(0u64..10), rng.random_range(0u64..10)],
            vec![rng.random_range(0u64..10), rng.random_range(0u64..10)],
        );
        leaves.push(l);
        leaves.push(r);
    }
    tree
}

fn random_splitter(rng: &mut StdRng) -> Splitter {
    if rng.random_bool(0.5) {
        Splitter::Numeric {
            attr: rng.random_range(0..NUM_NUMERIC),
            threshold: rng.random_range(-1_000.0..1_000.0),
        }
    } else {
        let attr = rng.random_range(0..NUM_CATEGORICAL);
        Splitter::Categorical {
            attr,
            left_values: rng.next_u64() & ((1u64 << CATEGORICAL_CARDINALITY[attr]) - 1),
        }
    }
}

/// A random record in the same attribute domains the random splitters draw
/// from, with occasional boundary-exact numeric values.
fn random_record(rng: &mut StdRng) -> Record {
    let mut numeric = [0.0f64; NUM_NUMERIC];
    for v in numeric.iter_mut() {
        *v = rng.random_range(-1_200.0..1_200.0);
    }
    let mut categorical = [0u8; NUM_CATEGORICAL];
    for (c, &card) in categorical.iter_mut().zip(&CATEGORICAL_CARDINALITY) {
        *c = rng.random_range(0..card) as u8;
    }
    Record { numeric, categorical, class: 0 }
}

use rand::RngCore;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random trees × random records: all layouts match the pointer tree.
    #[test]
    fn random_trees_agree(seed in any::<u64>(), splits in 0usize..40) {
        let mut rng = StdRng::seed_from_u64(seed);
        let tree = random_tree(&mut rng, splits);
        let records: Vec<Record> = (0..200).map(|_| random_record(&mut rng)).collect();
        check_parity(&tree, &records);
    }

    /// Records whose numeric values are copied from thresholds in the tree
    /// exercise the inclusive `<=` boundary of every numeric split.
    #[test]
    fn threshold_exact_records_agree(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let tree = random_tree(&mut rng, 20);
        let thresholds: Vec<(usize, f64)> = tree
            .nodes
            .iter()
            .filter_map(|node| match node {
                pdc_clouds::Node::Internal {
                    splitter: Splitter::Numeric { attr, threshold },
                    ..
                } => Some((*attr, *threshold)),
                _ => None,
            })
            .collect();
        let mut records = Vec::new();
        for &(attr, threshold) in &thresholds {
            let mut r = random_record(&mut rng);
            r.numeric[attr] = threshold;
            records.push(r);
            // And one record sitting exactly on *every* numeric threshold at
            // once, to stack boundary cases along a single root-leaf path.
            let mut all = random_record(&mut rng);
            for &(a, t) in &thresholds {
                all.numeric[a] = t;
            }
            records.push(all);
        }
        check_parity(&tree, &records);
    }
}

#[test]
fn single_leaf_tree_agrees() {
    for class in 0..2u64 {
        let counts = if class == 0 { vec![7, 3] } else { vec![3, 7] };
        let tree = DecisionTree::single_leaf(counts);
        let records = generate(500, GeneratorConfig::default());
        check_parity(&tree, &records);
        // The predicated layout pads to depth 0 here: zero loop iterations.
        let pred = Layout::Predicated.compile(&tree);
        assert_eq!(pred.predict(&records[0]), tree.predict(&records[0]));
    }
}

#[test]
fn max_depth_chain_agrees() {
    // A pathological left-leaning chain as deep as the training stack would
    // ever grow one (CloudsParams::default().max_depth), splitting on the
    // same attribute with descending thresholds.
    let depth = CloudsParams::default().max_depth.max(32);
    let mut tree = DecisionTree::single_leaf(vec![depth as u64, depth as u64]);
    let mut leaf = 0usize;
    for d in 0..depth {
        let threshold = 1_000.0 - d as f64;
        let (l, _) = tree.split_leaf(
            leaf,
            Splitter::Numeric { attr: 0, threshold },
            vec![(depth - d) as u64, 0],
            vec![0, 1],
        );
        leaf = l;
    }
    let mut rng = StdRng::seed_from_u64(0xDEE9);
    let mut records: Vec<Record> = (0..400).map(|_| random_record(&mut rng)).collect();
    // Drive records to every depth of the chain.
    for (i, r) in records.iter_mut().enumerate() {
        r.numeric[0] = 1_001.0 - (i % (depth + 2)) as f64;
    }
    check_parity(&tree, &records);
}

#[test]
fn categorical_only_tree_agrees() {
    // Splits on every categorical attribute and masks at both extremes
    // (empty mask: everything goes right; full mask: everything goes left).
    let mut tree = DecisionTree::single_leaf(vec![4, 4]);
    let (l, r) = tree.split_leaf(
        0,
        Splitter::Categorical { attr: 0, left_values: 0b0_0110 },
        vec![4, 0],
        vec![0, 4],
    );
    tree.split_leaf(
        l,
        Splitter::Categorical { attr: 1, left_values: 0 },
        vec![2, 0],
        vec![2, 0],
    );
    tree.split_leaf(
        r,
        Splitter::Categorical {
            attr: 2,
            left_values: (1u64 << CATEGORICAL_CARDINALITY[2]) - 1,
        },
        vec![0, 2],
        vec![0, 2],
    );
    let mut rng = StdRng::seed_from_u64(0xCA7);
    let records: Vec<Record> = (0..500).map(|_| random_record(&mut rng)).collect();
    check_parity(&tree, &records);
    // Trained categorical-heavy tree: function F10 splits on elevel/zipcode.
    let gen = GeneratorConfig { function: ClassifyFn::F10, noise: 0.0, seed: 0xCAFE };
    let out = train_in_memory(&generate(2_000, gen), 2, &small_config());
    check_parity(&out.tree, &generate(1_000, gen));
}
