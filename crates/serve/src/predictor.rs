//! The [`Predictor`] trait: one scoring interface over every compiled
//! layout, plus the pointer-tree baseline.
//!
//! Every layout must return **bit-identical** predictions to
//! [`pdc_clouds::DecisionTree::predict`] on every record — the layouts are
//! pure representation changes, never approximations. What *does* differ is
//! the charged cost on the simulated machine: the pointer tree pays a
//! dependent-load charge per visited node on top of the split test and the
//! branch, the flat array drops the dependent load (children are computed
//! indices into one contiguous slice), and the predicated array additionally
//! drops the branch by walking every record through exactly `depth`
//! conditional-move steps.

use pdc_cgm::{OpKind, Proc};
use pdc_clouds::{DecisionTree, Node};
use pdc_datagen::Record;

/// A compiled model that classifies records and knows how to charge the
/// simulated machine for doing so.
///
/// The serving harness ([`crate::harness::serve`]) only ever talks to models
/// through this trait, so every layout (and any future one) plugs into the
/// same broadcast → stream → score pipeline.
///
/// ```
/// use pdc_clouds::{DecisionTree, Splitter};
/// use pdc_datagen::{generate, GeneratorConfig};
/// use pdc_serve::{FlatTree, PointerPredictor, Predictor};
///
/// // A two-leaf tree: salary <= 60k goes left.
/// let mut tree = DecisionTree::single_leaf(vec![6, 4]);
/// tree.split_leaf(
///     0,
///     Splitter::Numeric { attr: 0, threshold: 60_000.0 },
///     vec![6, 0],
///     vec![0, 4],
/// );
/// let flat = FlatTree::compile(&tree);
/// let pointer = PointerPredictor::new(tree.clone());
/// for r in generate(64, GeneratorConfig::default()) {
///     assert_eq!(flat.predict(&r), tree.predict(&r));
///     assert_eq!(pointer.predict(&r), tree.predict(&r));
/// }
/// ```
pub trait Predictor {
    /// Short layout name (`"pointer"`, `"flat"`, `"predicated"`).
    fn layout_name(&self) -> &'static str;

    /// Classify one record. Must equal the source tree's
    /// [`DecisionTree::predict`] bit for bit.
    fn predict(&self, r: &Record) -> u8;

    /// Number of nodes in the compiled representation.
    fn num_nodes(&self) -> usize;

    /// Resident bytes of the compiled representation — the working set the
    /// cache model sees while scoring ([`pdc_cgm::CacheParams`]).
    fn footprint_bytes(&self) -> usize;

    /// Classify a batch, appending one class byte per record to `out` and
    /// charging `proc` this layout's traversal cost.
    fn score_batch(&self, proc: &mut Proc, records: &[Record], out: &mut Vec<u8>);

    /// Classify a batch without a simulated machine (tests, offline use).
    fn predict_all(&self, records: &[Record]) -> Vec<u8> {
        records.iter().map(|r| self.predict(r)).collect()
    }
}

/// The baseline: serve straight from the training-time
/// [`DecisionTree`] arena (enum nodes, heap-allocated class counts,
/// children addressed by arena id).
///
/// Per visited node the traversal charges a split test, a branch
/// ([`OpKind::Compare`], the taken/not-taken decision on the outcome) and a
/// dependent load ([`OpKind::Misc`], chasing the child id into a scattered
/// arena entry), all against the arena's full footprint.
#[derive(Debug, Clone, PartialEq)]
pub struct PointerPredictor {
    tree: DecisionTree,
    footprint: usize,
}

impl PointerPredictor {
    /// Wrap a built tree for serving.
    pub fn new(tree: DecisionTree) -> Self {
        let heap: usize = tree
            .nodes
            .iter()
            .map(|n| n.counts().len() * std::mem::size_of::<u64>())
            .sum();
        let footprint = tree.nodes.len() * std::mem::size_of::<Node>() + heap;
        PointerPredictor { tree, footprint }
    }

    /// The wrapped tree.
    pub fn tree(&self) -> &DecisionTree {
        &self.tree
    }

    /// Split tests on the root-to-leaf path of `r` (the number of internal
    /// nodes visited).
    fn path_len(&self, r: &Record) -> u64 {
        let mut id = self.tree.root();
        let mut steps = 0;
        loop {
            match &self.tree.nodes[id] {
                Node::Leaf { .. } => return steps,
                Node::Internal {
                    splitter,
                    left,
                    right,
                    ..
                } => {
                    steps += 1;
                    id = if splitter.goes_left(r) { *left } else { *right };
                }
            }
        }
    }
}

impl Predictor for PointerPredictor {
    fn layout_name(&self) -> &'static str {
        "pointer"
    }

    fn predict(&self, r: &Record) -> u8 {
        self.tree.predict(r)
    }

    fn num_nodes(&self) -> usize {
        self.tree.nodes.len()
    }

    fn footprint_bytes(&self) -> usize {
        self.footprint
    }

    fn score_batch(&self, proc: &mut Proc, records: &[Record], out: &mut Vec<u8>) {
        let mut steps = 0u64;
        for r in records {
            steps += self.path_len(r);
            out.push(self.tree.predict(r));
        }
        let ws = self.footprint;
        proc.charge_ws(OpKind::SplitTest, steps, ws);
        proc.charge_ws(OpKind::Compare, steps, ws);
        proc.charge_ws(OpKind::Misc, steps, ws);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdc_cgm::Cluster;
    use pdc_clouds::Splitter;
    use pdc_datagen::{generate, GeneratorConfig};

    fn two_level_tree() -> DecisionTree {
        let mut t = DecisionTree::single_leaf(vec![5, 5]);
        t.split_leaf(
            0,
            Splitter::Numeric {
                attr: 2,
                threshold: 50.0,
            },
            vec![5, 0],
            vec![0, 5],
        );
        t
    }

    #[test]
    fn pointer_predicts_like_the_tree() {
        let tree = two_level_tree();
        let p = PointerPredictor::new(tree.clone());
        for r in generate(200, GeneratorConfig::default()) {
            assert_eq!(p.predict(&r), tree.predict(&r));
        }
        assert_eq!(p.layout_name(), "pointer");
        assert_eq!(p.num_nodes(), 3);
        assert!(p.footprint_bytes() > 3 * std::mem::size_of::<Node>());
    }

    #[test]
    fn path_len_counts_internal_nodes() {
        let p = PointerPredictor::new(two_level_tree());
        let records = generate(8, GeneratorConfig::default());
        for r in &records {
            assert_eq!(p.path_len(r), 1);
        }
        let single = PointerPredictor::new(DecisionTree::single_leaf(vec![1, 0]));
        assert_eq!(single.path_len(&records[0]), 0);
    }

    #[test]
    fn score_batch_charges_the_clock() {
        let p = PointerPredictor::new(two_level_tree());
        let records = generate(64, GeneratorConfig::default());
        let out = Cluster::new(1).run(|proc| {
            let mut preds = Vec::new();
            p.score_batch(proc, &records, &mut preds);
            preds
        });
        assert_eq!(out.results[0], p.predict_all(&records));
        assert!(out.makespan() > 0.0, "scoring must cost virtual time");
    }
}
