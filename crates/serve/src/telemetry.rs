//! Serving telemetry: tumbling windows, SLO monitors and error budgets on
//! the virtual clock.
//!
//! The scoring harness measures whole-run percentiles; a fleet operator
//! watches a *time series*. This module slices a serving run into
//! **tumbling windows** of fixed virtual duration: every batch completion
//! lands in window `⌊t / window⌋`, and each window accumulates batch
//! count, records scored and a latency [`Histogram`] — bounded memory per
//! window, mergeable across ranks (see [`pdc_cgm::hist`]). Per-window
//! throughput and tail quantiles become the operator-facing series.
//!
//! On top of the series sits an [`SloSpec`] — *"the `quantile` batch
//! latency must stay below `threshold`"* — evaluated per window into
//! compliance, plus the three numbers an on-call rotation actually pages
//! on:
//!
//! * **error-budget consumption** — with a compliance `target` (e.g.
//!   "99% of windows must comply"), the budget is the allowed fraction of
//!   violating windows; consumption is `violations / (allowed_fraction ×
//!   windows)`, where 1.0 means the budget for the observed period is
//!   exactly spent;
//! * **burn rate** — the cumulative violation fraction divided by the
//!   allowed fraction: 1.0 burns the budget exactly at the sustainable
//!   rate, 2.0 exhausts it in half the period;
//! * an **overload flag** — raised when the window quantile exceeds the
//!   threshold for [`SloSpec::overload_windows`] *consecutive* windows,
//!   the signal a hot-swap/refresh pipeline would key on.
//!
//! Everything here is **pure observation**: the recorder reads the
//! virtual clock and (when [`pdc_cgm::cluster::MachineConfig::gauges`] is
//! on) appends gauge points at window boundaries — `serve.window.rps`,
//! `serve.window.p99_ms`, `serve.window.batches` and
//! `serve.slo.violation` appear as Perfetto counter tracks next to the
//! pool/mailbox gauges. It never advances the clock, never touches
//! counters, so a telemetry-on run is bit-identical to a telemetry-off
//! run (regression-tested).

use pdc_cgm::{Histogram, HistogramSpec, Proc};

/// Telemetry configuration for one serving run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TelemetryConfig {
    /// Tumbling-window duration, virtual seconds.
    pub window_seconds: f64,
    /// Bucket layout of the per-window latency histograms.
    pub hist: HistogramSpec,
    /// Optional SLO to evaluate over the window series.
    pub slo: Option<SloSpec>,
}

impl TelemetryConfig {
    /// Telemetry with the default latency layout and no SLO.
    pub fn new(window_seconds: f64) -> TelemetryConfig {
        assert!(
            window_seconds > 0.0 && window_seconds.is_finite(),
            "window_seconds must be positive"
        );
        TelemetryConfig {
            window_seconds,
            hist: HistogramSpec::latency_default(),
            slo: None,
        }
    }

    /// Same telemetry with an SLO attached.
    pub fn with_slo(mut self, slo: SloSpec) -> TelemetryConfig {
        self.slo = Some(slo);
        self
    }
}

/// A latency service-level objective over the window series: *"the
/// `quantile` batch latency of every window must stay below `threshold`
/// seconds"*, with a compliance target and an overload trip-wire.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloSpec {
    /// Which latency quantile the objective constrains (e.g. 0.99).
    pub quantile: f64,
    /// Threshold the quantile must stay below, virtual seconds.
    pub threshold: f64,
    /// Fraction of windows that must comply (e.g. 0.99 → the error budget
    /// is 1% of windows). Must be in `[0, 1)` strictly below 1 so the
    /// budget is positive.
    pub target: f64,
    /// Consecutive violating windows that raise the overload flag.
    pub overload_windows: usize,
}

impl SloSpec {
    /// A p99-style objective: `quantile` 0.99, the given threshold,
    /// 99% window compliance, overload after 3 consecutive bad windows.
    pub fn p99(threshold_seconds: f64) -> SloSpec {
        SloSpec {
            quantile: 0.99,
            threshold: threshold_seconds,
            target: 0.99,
            overload_windows: 3,
        }
    }

    /// The error budget as a fraction of windows: `1 - target`.
    pub fn budget_fraction(&self) -> f64 {
        (1.0 - self.target).max(f64::MIN_POSITIVE)
    }
}

/// One tumbling window's accumulated serving statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowStats {
    /// Window index: `⌊completion_time / window_seconds⌋`.
    pub index: u64,
    /// Window start, virtual seconds (`index × window_seconds`).
    pub start: f64,
    /// Window end, virtual seconds.
    pub end: f64,
    /// Batches whose completion fell in this window.
    pub batches: u64,
    /// Records scored by those batches.
    pub records: u64,
    /// Latency histogram of those batches.
    pub hist: Histogram,
}

impl WindowStats {
    fn new(index: u64, window_seconds: f64, spec: HistogramSpec) -> WindowStats {
        WindowStats {
            index,
            start: index as f64 * window_seconds,
            end: (index + 1) as f64 * window_seconds,
            batches: 0,
            records: 0,
            hist: Histogram::new(spec),
        }
    }

    /// Sustained throughput of the window, records per virtual second.
    pub fn throughput_rps(&self) -> f64 {
        let span = self.end - self.start;
        if span > 0.0 {
            self.records as f64 / span
        } else {
            0.0
        }
    }
}

/// Per-rank window recorder used inside the serving loop. Pure
/// observation — see the module docs.
#[derive(Debug)]
pub struct WindowRecorder {
    cfg: TelemetryConfig,
    current: Option<WindowStats>,
    done: Vec<WindowStats>,
}

impl WindowRecorder {
    /// New recorder for one rank.
    pub fn new(cfg: TelemetryConfig) -> WindowRecorder {
        WindowRecorder {
            cfg,
            current: None,
            done: Vec::new(),
        }
    }

    /// Record one batch: completion at virtual time `end`, `records`
    /// scored, observed `latency` seconds. Closes (and gauge-exports) any
    /// window older than `end`'s.
    pub fn record_batch(&mut self, proc: &mut Proc, end: f64, records: u64, latency: f64) {
        let index = (end / self.cfg.window_seconds).floor() as u64;
        if self.current.as_ref().is_some_and(|w| w.index != index) {
            self.close_current(proc);
        }
        let w = self
            .current
            .get_or_insert_with(|| WindowStats::new(index, self.cfg.window_seconds, self.cfg.hist));
        w.batches += 1;
        w.records += records;
        w.hist.record(latency);
    }

    /// Close the last open window and return every window in index order.
    pub fn finish(mut self, proc: &mut Proc) -> Vec<WindowStats> {
        self.close_current(proc);
        self.done
    }

    fn close_current(&mut self, proc: &mut Proc) {
        let Some(w) = self.current.take() else {
            return;
        };
        if proc.gauges_enabled() {
            proc.gauge_at("serve.window.rps", w.end, w.throughput_rps());
            proc.gauge_at("serve.window.p99_ms", w.end, w.hist.quantile(0.99) * 1e3);
            proc.gauge_at("serve.window.batches", w.end, w.batches as f64);
            if let Some(slo) = &self.cfg.slo {
                let violating = w.hist.quantile(slo.quantile) > slo.threshold;
                proc.gauge_at("serve.slo.violation", w.end, f64::from(u8::from(violating)));
            }
        }
        self.done.push(w);
    }
}

/// One window's SLO evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowSlo {
    /// Window index.
    pub index: u64,
    /// The constrained quantile's value in this window, seconds.
    pub quantile_value: f64,
    /// Whether the window met the objective.
    pub compliant: bool,
    /// Cumulative burn rate up to and including this window: the
    /// violation fraction so far over the budget fraction (1.0 =
    /// sustainable).
    pub burn_rate: f64,
}

/// SLO evaluation over a whole window series.
#[derive(Debug, Clone, PartialEq)]
pub struct SloReport {
    /// The objective evaluated.
    pub spec: SloSpec,
    /// Per-window evaluations, in index order.
    pub windows: Vec<WindowSlo>,
    /// Windows that met the objective.
    pub compliant_windows: usize,
    /// Windows that violated it.
    pub violating_windows: usize,
    /// `compliant_windows / windows` (1.0 for an empty series).
    pub compliance: f64,
    /// Fraction of the period's error budget consumed:
    /// `violations / (budget_fraction × windows)`. Above 1.0 the SLO for
    /// the observed period is blown.
    pub error_budget_consumed: f64,
    /// Overall burn rate: violation fraction over budget fraction. For a
    /// complete series this equals `error_budget_consumed`.
    pub burn_rate: f64,
    /// True when `spec.overload_windows` consecutive windows violated.
    pub overloaded: bool,
    /// Index of the window at which the overload flag first tripped.
    pub overload_at: Option<u64>,
}

/// Evaluate `spec` over a (merged, index-ordered) window series.
pub fn evaluate_slo(windows: &[WindowStats], spec: SloSpec) -> SloReport {
    let budget = spec.budget_fraction();
    let mut rows = Vec::with_capacity(windows.len());
    let mut violations = 0usize;
    let mut consecutive = 0usize;
    let mut overload_at = None;
    for (i, w) in windows.iter().enumerate() {
        let qv = w.hist.quantile(spec.quantile);
        let compliant = qv <= spec.threshold;
        if compliant {
            consecutive = 0;
        } else {
            violations += 1;
            consecutive += 1;
            if consecutive >= spec.overload_windows.max(1) && overload_at.is_none() {
                overload_at = Some(w.index);
            }
        }
        let burn_rate = violations as f64 / ((i + 1) as f64 * budget);
        rows.push(WindowSlo {
            index: w.index,
            quantile_value: qv,
            compliant,
            burn_rate,
        });
    }
    let n = windows.len();
    let compliance = if n == 0 {
        1.0
    } else {
        (n - violations) as f64 / n as f64
    };
    let consumed = if n == 0 {
        0.0
    } else {
        violations as f64 / (budget * n as f64)
    };
    SloReport {
        spec,
        windows: rows,
        compliant_windows: n - violations,
        violating_windows: violations,
        compliance,
        error_budget_consumed: consumed,
        burn_rate: consumed,
        overloaded: overload_at.is_some(),
        overload_at,
    }
}

/// Merge per-rank window series into one fleet-level series: windows with
/// the same index add batch/record counts and merge their histograms;
/// the result is sorted by index. Mergeability of the histogram makes
/// this exact — the fleet series equals the series a single observer of
/// all batches would have recorded.
pub fn merge_windows(per_rank: &[Vec<WindowStats>]) -> Vec<WindowStats> {
    let mut merged: Vec<WindowStats> = Vec::new();
    for rank in per_rank {
        for w in rank {
            match merged.iter_mut().find(|m| m.index == w.index) {
                Some(m) => {
                    m.batches += w.batches;
                    m.records += w.records;
                    m.hist.merge(&w.hist);
                }
                None => merged.push(w.clone()),
            }
        }
    }
    merged.sort_by_key(|w| w.index);
    merged
}

/// Everything the telemetry layer produces for one serving run.
#[derive(Debug, Clone)]
pub struct TelemetryReport {
    /// The configuration that produced it.
    pub config: TelemetryConfig,
    /// Each rank's own window series.
    pub per_rank: Vec<Vec<WindowStats>>,
    /// The fleet-level series ([`merge_windows`] of `per_rank`).
    pub windows: Vec<WindowStats>,
    /// SLO evaluation over the fleet series, when configured.
    pub slo: Option<SloReport>,
}

impl TelemetryReport {
    /// Build the report from per-rank series.
    pub fn from_per_rank(config: TelemetryConfig, per_rank: Vec<Vec<WindowStats>>) -> TelemetryReport {
        let windows = merge_windows(&per_rank);
        let slo = config.slo.map(|s| evaluate_slo(&windows, s));
        TelemetryReport {
            config,
            per_rank,
            windows,
            slo,
        }
    }

    /// The fleet window series as CSV
    /// (`window,start_s,end_s,batches,records,rps,p50_ms,p99_ms,p999_ms,compliant`;
    /// the last column is empty without an SLO).
    pub fn windows_csv(&self) -> String {
        let mut out =
            String::from("window,start_s,end_s,batches,records,rps,p50_ms,p99_ms,p999_ms,compliant\n");
        for w in &self.windows {
            let compliant = match &self.slo {
                Some(slo) => slo
                    .windows
                    .iter()
                    .find(|r| r.index == w.index)
                    .map(|r| if r.compliant { "yes" } else { "no" })
                    .unwrap_or(""),
                None => "",
            };
            out.push_str(&format!(
                "{},{:.6},{:.6},{},{},{:.1},{:.4},{:.4},{:.4},{}\n",
                w.index,
                w.start,
                w.end,
                w.batches,
                w.records,
                w.throughput_rps(),
                w.hist.quantile(0.50) * 1e3,
                w.hist.quantile(0.99) * 1e3,
                w.hist.quantile(0.999) * 1e3,
                compliant,
            ));
        }
        out
    }

    /// Terminal-friendly rendering: the window table plus the SLO verdict.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "serving telemetry: {} window(s) of {:.6} s across {} rank(s)\n",
            self.windows.len(),
            self.config.window_seconds,
            self.per_rank.len()
        ));
        out.push_str(&format!(
            "  {:>6} {:>12} {:>10} {:>10} {:>12} {:>10} {:>10}\n",
            "window", "start_s", "batches", "records", "rps", "p99_ms", "p999_ms"
        ));
        for w in &self.windows {
            out.push_str(&format!(
                "  {:>6} {:>12.6} {:>10} {:>10} {:>12.1} {:>10.4} {:>10.4}\n",
                w.index,
                w.start,
                w.batches,
                w.records,
                w.throughput_rps(),
                w.hist.quantile(0.99) * 1e3,
                w.hist.quantile(0.999) * 1e3,
            ));
        }
        if let Some(slo) = &self.slo {
            out.push_str(&format!(
                "slo: p{:.4} <= {:.6} s over {:.1}% of windows\n",
                slo.spec.quantile * 100.0,
                slo.spec.threshold,
                slo.spec.target * 100.0
            ));
            out.push_str(&format!(
                "  compliance {:.1}% ({}/{} windows), error budget consumed {:.2}, \
                 burn rate {:.2}\n",
                slo.compliance * 100.0,
                slo.compliant_windows,
                slo.windows.len(),
                slo.error_budget_consumed,
                slo.burn_rate
            ));
            match slo.overload_at {
                Some(at) => out.push_str(&format!(
                    "  OVERLOADED: {} consecutive violating window(s) starting before window {}\n",
                    slo.spec.overload_windows, at
                )),
                None => out.push_str("  not overloaded\n"),
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdc_cgm::{Cluster, MachineConfig, OpKind};

    fn window_with(index: u64, latencies: &[f64]) -> WindowStats {
        let mut w = WindowStats::new(index, 1.0, HistogramSpec::latency_default());
        for &l in latencies {
            w.batches += 1;
            w.records += 100;
            w.hist.record(l);
        }
        w
    }

    #[test]
    fn recorder_slices_batches_into_tumbling_windows() {
        let cfg = TelemetryConfig::new(1.0);
        let out = Cluster::new(1).run(move |proc| {
            let mut rec = WindowRecorder::new(cfg);
            // Batches at t = 0.2, 0.7 (window 0), 1.1 (window 1), 3.4
            // (window 3 — window 2 has no traffic and is simply absent).
            rec.record_batch(proc, 0.2, 100, 0.01);
            rec.record_batch(proc, 0.7, 100, 0.02);
            rec.record_batch(proc, 1.1, 100, 0.03);
            rec.record_batch(proc, 3.4, 100, 0.04);
            rec.finish(proc)
        });
        let windows = &out.results[0];
        assert_eq!(windows.len(), 3);
        assert_eq!(
            windows.iter().map(|w| w.index).collect::<Vec<_>>(),
            vec![0, 1, 3]
        );
        assert_eq!(windows[0].batches, 2);
        assert_eq!(windows[0].records, 200);
        assert_eq!(windows[0].start, 0.0);
        assert_eq!(windows[0].end, 1.0);
        assert!((windows[0].throughput_rps() - 200.0).abs() < 1e-9);
        assert_eq!(windows[2].batches, 1);
    }

    #[test]
    fn recorder_exports_gauges_at_window_ends() {
        let cfg = TelemetryConfig::new(1.0).with_slo(SloSpec::p99(0.015));
        let mut machine = MachineConfig::default();
        machine.gauges = true;
        let out = Cluster::with_config(1, machine).run(move |proc| {
            let mut rec = WindowRecorder::new(cfg);
            rec.record_batch(proc, 0.5, 100, 0.01); // compliant window
            rec.record_batch(proc, 1.5, 100, 0.02); // violating window
            proc.charge(OpKind::Misc, 1);
            rec.finish(proc);
        });
        let gauges = &out.stats[0].gauges;
        let rps: Vec<_> = gauges.iter().filter(|g| g.name == "serve.window.rps").collect();
        assert_eq!(rps.len(), 2);
        assert_eq!(rps[0].time, 1.0, "window 0 sample sits at the window end");
        assert!((rps[0].value - 100.0).abs() < 1e-9);
        let violations: Vec<_> = gauges
            .iter()
            .filter(|g| g.name == "serve.slo.violation")
            .collect();
        assert_eq!(violations.len(), 2);
        assert_eq!(violations[0].value, 0.0);
        assert_eq!(violations[1].value, 1.0);
    }

    #[test]
    fn merge_windows_is_exact_across_ranks() {
        let rank0 = vec![window_with(0, &[0.01, 0.02]), window_with(1, &[0.03])];
        let rank1 = vec![window_with(0, &[0.04]), window_with(2, &[0.05])];
        let merged = merge_windows(&[rank0, rank1]);
        assert_eq!(merged.len(), 3);
        assert_eq!(merged[0].batches, 3);
        assert_eq!(merged[0].records, 300);
        assert_eq!(merged[0].hist.count(), 3);
        assert_eq!(merged[0].hist.max(), 0.04);
        assert_eq!(merged[1].index, 1);
        assert_eq!(merged[2].index, 2);
    }

    #[test]
    fn slo_compliance_budget_and_burn_rate() {
        // 10 windows, p99 threshold 0.015: windows with 0.02 latency violate.
        let windows: Vec<WindowStats> = (0..10)
            .map(|i| window_with(i, if i < 8 { &[0.01] } else { &[0.02] }))
            .collect();
        let spec = SloSpec {
            quantile: 0.99,
            threshold: 0.015,
            target: 0.9,
            overload_windows: 2,
        };
        let report = evaluate_slo(&windows, spec);
        assert_eq!(report.violating_windows, 2);
        assert!((report.compliance - 0.8).abs() < 1e-12);
        // Budget: 10% of 10 windows = 1 allowed violation; 2 observed → 2.0.
        assert!((report.error_budget_consumed - 2.0).abs() < 1e-12);
        assert!((report.burn_rate - 2.0).abs() < 1e-12);
        assert!(report.overloaded, "2 consecutive violations trip K=2");
        assert_eq!(report.overload_at, Some(9));
        // The per-window cumulative burn rate is monotone over the bad tail.
        assert!(report.windows[8].burn_rate < report.windows[9].burn_rate);
    }

    #[test]
    fn slo_overload_requires_consecutive_violations() {
        // Violations at windows 1, 3, 5 — never consecutive.
        let windows: Vec<WindowStats> = (0..6)
            .map(|i| window_with(i, if i % 2 == 1 { &[0.02] } else { &[0.01] }))
            .collect();
        let spec = SloSpec {
            quantile: 0.99,
            threshold: 0.015,
            target: 0.5,
            overload_windows: 2,
        };
        let report = evaluate_slo(&windows, spec);
        assert_eq!(report.violating_windows, 3);
        assert!(!report.overloaded);
        assert_eq!(report.overload_at, None);
        assert!((report.error_budget_consumed - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_series_is_trivially_compliant() {
        let report = evaluate_slo(&[], SloSpec::p99(0.01));
        assert_eq!(report.compliance, 1.0);
        assert_eq!(report.error_budget_consumed, 0.0);
        assert!(!report.overloaded);
    }

    #[test]
    fn report_renders_and_exports_csv() {
        let cfg = TelemetryConfig::new(1.0).with_slo(SloSpec::p99(0.015));
        let per_rank = vec![
            vec![window_with(0, &[0.01]), window_with(1, &[0.02])],
            vec![window_with(0, &[0.01])],
        ];
        let report = TelemetryReport::from_per_rank(cfg, per_rank);
        let csv = report.windows_csv();
        let mut lines = csv.lines();
        assert_eq!(
            lines.next(),
            Some("window,start_s,end_s,batches,records,rps,p50_ms,p99_ms,p999_ms,compliant")
        );
        assert_eq!(csv.lines().count(), 3, "header + 2 merged windows");
        assert!(csv.contains(",yes\n"));
        assert!(csv.contains(",no\n"));
        let rendered = report.render();
        assert!(rendered.contains("serving telemetry: 2 window(s)"));
        assert!(rendered.contains("slo: p99"));
        assert!(rendered.contains("compliance 50.0%"));
    }
}
