//! The batch/streaming scoring harness on the simulated machine.
//!
//! A serving run has three phases, mirroring a production deployment:
//!
//! 1. **Deploy** — rank 0 holds the compiled model and broadcasts it to
//!    every rank over the `cgm` collectives (span `serve.deploy`; the
//!    underlying `cgm.broadcast` span records the payload size, so model
//!    distribution shows up in traces as a first-class communication step).
//! 2. **Stream** — each rank streams its request shard from its own disk
//!    in `batch_records`-sized chunks through the ordinary
//!    [`pdc_pario`] read path; with a prefetching engine attached to the
//!    farm, the next batch's transfer rides under the current batch's
//!    scoring compute.
//! 3. **Score** — each batch is classified through the [`Predictor`]
//!    trait (span `serve.score`), charging the layout's traversal cost.
//!
//! Per batch the harness records the **virtual-clock latency** from the
//! start of the batch read to the last prediction. Latencies accumulate in
//! a bounded-memory, mergeable [`Histogram`] per rank (bounded relative
//! error, see [`pdc_cgm::hist`]); the report aggregates sustained
//! records/sec and histogram-derived p50/p99/p999 tail latency over all
//! batches of all ranks. For validation runs,
//! [`ServeConfig::exact_latencies`] additionally keeps every raw latency
//! and reports exact nearest-rank percentiles alongside — the `fig_serving`
//! harness asserts the two agree within the histogram's relative error.
//! With [`ServeConfig::telemetry`] set, a [`WindowRecorder`] slices each
//! rank's batch completions into tumbling windows and the report carries a
//! full [`TelemetryReport`] (window time series + SLO evaluation).

use pdc_cgm::{Cluster, Histogram, HistogramSpec, ProcStats, Wire};
use pdc_clouds::DecisionTree;
use pdc_datagen::{GeneratorConfig, Record, RecordStream};
use pdc_pario::{DiskFarm, Rec};

use crate::ensemble::EnsemblePredictor;
use crate::model::Layout;
use crate::predictor::Predictor;
use crate::telemetry::{TelemetryConfig, TelemetryReport, WindowRecorder};

/// Name of the per-rank request shard file on each disk.
pub const REQUESTS_FILE: &str = "serve_requests";

/// Configuration of one serving run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServeConfig {
    /// Which compiled layout to deploy.
    pub layout: Layout,
    /// Records per scoring batch (also the streaming chunk size).
    pub batch_records: usize,
    /// Bucket layout of the per-rank latency histograms.
    pub hist: HistogramSpec,
    /// Optional windowed telemetry (time series + SLO monitors).
    pub telemetry: Option<TelemetryConfig>,
    /// Debug/validation flag: also keep every raw latency and report exact
    /// nearest-rank percentiles in [`ServeReport::latency_exact`]. Off by
    /// default — the production path is bounded-memory.
    pub exact_latencies: bool,
}

impl ServeConfig {
    /// A serving config with the default latency histogram, no windowed
    /// telemetry, and no exact-latency validation.
    pub fn new(layout: Layout, batch_records: usize) -> ServeConfig {
        ServeConfig {
            layout,
            batch_records,
            hist: HistogramSpec::latency_default(),
            telemetry: None,
            exact_latencies: false,
        }
    }

    /// Same config with windowed telemetry attached.
    pub fn with_telemetry(mut self, telemetry: TelemetryConfig) -> ServeConfig {
        self.telemetry = Some(telemetry);
        self
    }

    /// Same config with exact-latency validation enabled.
    pub fn with_exact_latencies(mut self) -> ServeConfig {
        self.exact_latencies = true;
        self
    }
}

/// Latency percentiles over every batch of every rank, in virtual seconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencySummary {
    /// Number of batches observed.
    pub batches: usize,
    /// Median batch latency.
    pub p50: f64,
    /// 99th-percentile batch latency.
    pub p99: f64,
    /// 99.9th-percentile batch latency.
    pub p999: f64,
    /// Worst batch latency.
    pub max: f64,
}

impl LatencySummary {
    /// Percentiles read off a latency [`Histogram`]: each quantile is the
    /// containing bucket's upper edge, so it overestimates the exact
    /// nearest-rank answer by at most the spec's relative error;
    /// `max` is the histogram's exact maximum.
    pub fn from_histogram(hist: &Histogram) -> LatencySummary {
        LatencySummary {
            batches: hist.count() as usize,
            p50: hist.quantile(0.50),
            p99: hist.quantile(0.99),
            p999: hist.quantile(0.999),
            max: hist.max(),
        }
    }
}

/// Nearest-rank percentiles of a set of batch latencies (the exact,
/// unbounded-memory path — used for validating the histogram summaries).
pub fn latency_summary(mut latencies: Vec<f64>) -> LatencySummary {
    latencies.sort_by(f64::total_cmp);
    let pick = |q: f64| -> f64 {
        if latencies.is_empty() {
            return 0.0;
        }
        let rank = (q * latencies.len() as f64).ceil() as usize;
        latencies[rank.clamp(1, latencies.len()) - 1]
    };
    LatencySummary {
        batches: latencies.len(),
        p50: pick(0.50),
        p99: pick(0.99),
        p999: pick(0.999),
        max: latencies.last().copied().unwrap_or(0.0),
    }
}

/// Everything a serving run produces.
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// The deployed layout.
    pub layout: Layout,
    /// Batch size used.
    pub batch_records: usize,
    /// Total requests scored across all ranks.
    pub records: u64,
    /// Wire size of the broadcast model, bytes.
    pub model_bytes: usize,
    /// Nodes in the compiled model.
    pub model_nodes: usize,
    /// Virtual time until the slowest rank finished deployment.
    pub deploy_seconds: f64,
    /// Virtual makespan of the whole run (deploy + stream + score).
    pub makespan: f64,
    /// Sustained throughput: `records / makespan`.
    pub throughput_rps: f64,
    /// Batch latency percentiles, derived from [`ServeReport::latency_hist`].
    pub latency: LatencySummary,
    /// Fleet-level latency histogram: the per-rank histograms merged.
    pub latency_hist: Histogram,
    /// Exact nearest-rank percentiles over every raw latency — present
    /// only when [`ServeConfig::exact_latencies`] was set.
    pub latency_exact: Option<LatencySummary>,
    /// Windowed telemetry — present only when [`ServeConfig::telemetry`]
    /// was set.
    pub telemetry: Option<TelemetryReport>,
    /// Per-rank predictions, one class byte per request, in shard order —
    /// the bit-identity contract across layouts is checked on these.
    pub predictions: Vec<Vec<u8>>,
    /// Per-rank virtual-clock statistics of the run.
    pub stats: Vec<ProcStats>,
}

/// Stage `total` generated request records onto the farm as contiguous
/// per-rank shards (file [`REQUESTS_FILE`] on each disk), uncharged — like
/// the training data, requests are assumed resident before the run starts.
/// Returns the number of records staged on each rank.
pub fn stage_requests(farm: &DiskFarm, total: u64, config: GeneratorConfig) -> Vec<u64> {
    let p = farm.nprocs();
    let mut stream = RecordStream::new(config);
    let mut shares = Vec::with_capacity(p);
    for rank in 0..p {
        let share = total / p as u64 + u64::from((rank as u64) < total % p as u64);
        let mut disk = farm.lock(rank);
        let file = disk.create::<Record>(REQUESTS_FILE);
        let mut left = share as usize;
        let mut buf = Vec::with_capacity(left.min(8_192));
        while left > 0 {
            let take = left.min(8_192);
            buf.clear();
            buf.extend(stream.by_ref().take(take));
            disk.append_uncharged(&file, &buf);
            left -= take;
        }
        shares.push(share);
    }
    shares
}

/// Run one serving experiment: compile `tree` into `cfg.layout`, broadcast
/// it from rank 0, stream each rank's [`REQUESTS_FILE`] shard in
/// `cfg.batch_records`-sized batches, score every record, and aggregate
/// throughput and tail latency. Compilation itself happens offline (before
/// the simulated run); the run charges deployment and scoring.
///
/// Predictions are bit-identical across layouts by construction; callers
/// that sweep layouts should still assert it (see
/// [`crate::model::assert_equivalent`] and the `fig_serving` harness).
///
/// ```
/// use pdc_cgm::Cluster;
/// use pdc_clouds::{DecisionTree, Splitter};
/// use pdc_datagen::GeneratorConfig;
/// use pdc_pario::DiskFarm;
/// use pdc_serve::{serve, stage_requests, Layout, ServeConfig};
///
/// let mut tree = DecisionTree::single_leaf(vec![6, 4]);
/// tree.split_leaf(
///     0,
///     Splitter::Numeric { attr: 2, threshold: 45.0 },
///     vec![6, 0],
///     vec![0, 4],
/// );
/// let farm = DiskFarm::in_memory(2);
/// stage_requests(&farm, 1_000, GeneratorConfig::default());
/// let report = serve(
///     &Cluster::new(2),
///     &farm,
///     &tree,
///     &ServeConfig::new(Layout::Flat, 128),
/// );
/// assert_eq!(report.records, 1_000);
/// assert!(report.throughput_rps > 0.0);
/// assert_eq!(report.latency.batches, 8); // 4 batches per rank
/// assert_eq!(report.latency_hist.count(), 8);
/// ```
pub fn serve(
    cluster: &Cluster,
    farm: &DiskFarm,
    tree: &DecisionTree,
    cfg: &ServeConfig,
) -> ServeReport {
    serve_model(cluster, farm, &cfg.layout.compile(tree), cfg)
}

/// Serve a bagged ensemble: compile every member tree into `cfg.layout`
/// and run the same pipeline with majority-vote scoring (see
/// [`EnsemblePredictor`]).
pub fn serve_ensemble(
    cluster: &Cluster,
    farm: &DiskFarm,
    trees: &[DecisionTree],
    cfg: &ServeConfig,
) -> ServeReport {
    serve_model(
        cluster,
        farm,
        &EnsemblePredictor::compile(trees, cfg.layout),
        cfg,
    )
}

/// The generic serving pipeline behind [`serve`] and [`serve_ensemble`]:
/// any [`Predictor`] that is also [`Wire`]-encodable (for the broadcast
/// deploy) and `Clone` (rank 0 seeds the broadcast with a copy) can be
/// served. `cfg.layout` is carried into the report as the layout the model
/// was compiled into.
pub fn serve_model<M: Predictor + Wire + Clone + Sync>(
    cluster: &Cluster,
    farm: &DiskFarm,
    model: &M,
    cfg: &ServeConfig,
) -> ServeReport {
    assert!(cfg.batch_records > 0, "batch_records must be positive");
    assert_eq!(
        cluster.nprocs(),
        farm.nprocs(),
        "cluster and farm must have the same number of ranks"
    );
    let model_bytes = model.to_bytes().len();
    let model_nodes = model.num_nodes();
    let out = cluster.run(|proc| {
        // Deploy: rank 0 is the model owner; everyone receives a copy.
        let model: M = proc.in_span(
            "serve.deploy",
            &[("bytes", model_bytes as i64)],
            |proc| {
                let seed = (proc.rank() == 0).then(|| model.clone());
                proc.broadcast(0, seed)
            },
        );
        let deploy_done = proc.clock();

        // Stream + score the local shard.
        let mut disk = farm.lock(proc.rank());
        let file = disk.open::<Record>(REQUESTS_FILE);
        let total = disk.num_records(&file);
        let mut reader = disk.reader(&file, cfg.batch_records);
        reader.prime(&mut disk, proc);
        let mut preds = Vec::with_capacity(total);
        let mut hist = Histogram::new(cfg.hist);
        let mut exact = cfg.exact_latencies.then(Vec::new);
        let mut windows = cfg.telemetry.map(WindowRecorder::new);
        loop {
            let start = proc.clock();
            let Some(batch) = reader.next_chunk(&mut disk, proc) else {
                break;
            };
            let bytes = (batch.len() * Record::ENCODED_BYTES) as i64;
            proc.in_span(
                "serve.score",
                &[("records", batch.len() as i64), ("bytes", bytes)],
                |proc| {
                    model.score_batch(proc, &batch, &mut preds);
                },
            );
            let end = proc.clock();
            let latency = end - start;
            hist.record(latency);
            if let Some(exact) = exact.as_mut() {
                exact.push(latency);
            }
            if let Some(rec) = windows.as_mut() {
                rec.record_batch(proc, end, batch.len() as u64, latency);
            }
        }
        disk.sync_engine(proc);
        drop(disk);
        let windows = windows.map(|rec| rec.finish(proc));
        proc.barrier();
        (preds, hist, exact, windows, deploy_done)
    });

    let makespan = out.makespan();
    let mut predictions = Vec::with_capacity(out.results.len());
    let mut latency_hist = Histogram::new(cfg.hist);
    let mut all_latencies = cfg.exact_latencies.then(Vec::new);
    let mut per_rank_windows = cfg.telemetry.map(|_| Vec::new());
    let mut deploy_seconds = 0.0f64;
    let mut records = 0u64;
    for (preds, hist, exact, windows, deploy) in out.results {
        records += preds.len() as u64;
        predictions.push(preds);
        latency_hist.merge(&hist);
        if let (Some(all), Some(exact)) = (all_latencies.as_mut(), exact) {
            all.extend(exact);
        }
        if let (Some(per_rank), Some(windows)) = (per_rank_windows.as_mut(), windows) {
            per_rank.push(windows);
        }
        deploy_seconds = deploy_seconds.max(deploy);
    }
    ServeReport {
        layout: cfg.layout,
        batch_records: cfg.batch_records,
        records,
        model_bytes,
        model_nodes,
        deploy_seconds,
        makespan,
        throughput_rps: if makespan > 0.0 {
            records as f64 / makespan
        } else {
            0.0
        },
        latency: LatencySummary::from_histogram(&latency_hist),
        latency_hist,
        latency_exact: all_latencies.map(latency_summary),
        telemetry: match (cfg.telemetry, per_rank_windows) {
            (Some(tcfg), Some(per_rank)) => Some(TelemetryReport::from_per_rank(tcfg, per_rank)),
            _ => None,
        },
        predictions,
        stats: out.stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ALL_LAYOUTS;
    use pdc_clouds::Splitter;

    fn tree() -> DecisionTree {
        let mut t = DecisionTree::single_leaf(vec![5, 5]);
        let (l, _) = t.split_leaf(
            0,
            Splitter::Numeric {
                attr: 0,
                threshold: 80_000.0,
            },
            vec![5, 0],
            vec![0, 5],
        );
        t.split_leaf(
            l,
            Splitter::Categorical {
                attr: 0,
                left_values: 0b0_0011,
            },
            vec![2, 1],
            vec![1, 2],
        );
        t
    }

    #[test]
    fn serve_ensemble_votes_like_the_offline_ensemble() {
        let mut other = DecisionTree::single_leaf(vec![5, 5]);
        other.split_leaf(
            0,
            Splitter::Numeric {
                attr: 2,
                threshold: 45.0,
            },
            vec![5, 0],
            vec![0, 5],
        );
        let trees = vec![tree(), other.clone(), other];
        let cluster = Cluster::new(2);
        let mut reference: Option<Vec<Vec<u8>>> = None;
        for layout in ALL_LAYOUTS {
            let farm = DiskFarm::in_memory(2);
            stage_requests(&farm, 500, GeneratorConfig::default());
            let report = serve_ensemble(&cluster, &farm, &trees, &ServeConfig::new(layout, 100));
            assert_eq!(report.records, 500);
            // The served predictions are exactly the offline majority vote.
            let offline = EnsemblePredictor::compile(&trees, layout);
            let mut disk_records = Vec::new();
            for rank in 0..2 {
                let mut disk = farm.lock(rank);
                let f = disk.open::<Record>(REQUESTS_FILE);
                disk_records.push(disk.read_all_uncharged(&f));
            }
            for (rank, shard) in disk_records.iter().enumerate() {
                assert_eq!(report.predictions[rank], offline.predict_all(shard));
            }
            match &reference {
                None => reference = Some(report.predictions.clone()),
                Some(want) => assert_eq!(&report.predictions, want, "{}", layout.name()),
            }
        }
    }

    #[test]
    fn latency_summary_nearest_rank() {
        let s = latency_summary((1..=1000).map(|i| i as f64).collect());
        assert_eq!(s.batches, 1000);
        assert_eq!(s.p50, 500.0);
        assert_eq!(s.p99, 990.0);
        assert_eq!(s.p999, 999.0);
        assert_eq!(s.max, 1000.0);
        let empty = latency_summary(Vec::new());
        assert_eq!(empty.batches, 0);
        assert_eq!(empty.max, 0.0);
    }

    #[test]
    fn stage_requests_shards_evenly() {
        let farm = DiskFarm::in_memory(3);
        let shares = stage_requests(&farm, 1_001, GeneratorConfig::default());
        assert_eq!(shares, vec![334, 334, 333]);
        let total: usize = (0..3)
            .map(|r| {
                let disk = farm.lock(r);
                let f = disk.open::<Record>(REQUESTS_FILE);
                disk.num_records(&f)
            })
            .sum();
        assert_eq!(total, 1_001);
    }

    #[test]
    fn serve_scores_every_record_in_every_layout() {
        let tree = tree();
        let cluster = Cluster::new(2);
        let mut reference: Option<Vec<Vec<u8>>> = None;
        for layout in ALL_LAYOUTS {
            let farm = DiskFarm::in_memory(2);
            stage_requests(&farm, 600, GeneratorConfig::default());
            let report = serve(&cluster, &farm, &tree, &ServeConfig::new(layout, 100));
            assert_eq!(report.records, 600);
            assert_eq!(report.latency.batches, 6);
            assert_eq!(report.latency_hist.count(), 6);
            assert!(report.latency_exact.is_none());
            assert!(report.telemetry.is_none());
            assert!(report.deploy_seconds > 0.0);
            assert!(report.makespan > report.deploy_seconds);
            assert!(report.latency.p50 <= report.latency.p999);
            match &reference {
                None => reference = Some(report.predictions.clone()),
                Some(reference) => assert_eq!(
                    &report.predictions, reference,
                    "layout {} predictions must be byte-identical",
                    layout.name()
                ),
            }
        }
    }

    #[test]
    fn flat_serves_faster_than_pointer() {
        let tree = tree();
        let cluster = Cluster::new(2);
        let run = |layout| {
            let farm = DiskFarm::in_memory(2);
            stage_requests(&farm, 2_000, GeneratorConfig::default());
            serve(&cluster, &farm, &tree, &ServeConfig::new(layout, 250))
        };
        let pointer = run(Layout::Pointer);
        let flat = run(Layout::Flat);
        assert!(
            flat.throughput_rps > pointer.throughput_rps,
            "flat {} rps must beat pointer {} rps",
            flat.throughput_rps,
            pointer.throughput_rps
        );
        assert!(flat.model_bytes < pointer.model_bytes);
    }

    #[test]
    fn histogram_percentiles_track_exact_within_relative_error() {
        let tree = tree();
        let cluster = Cluster::new(2);
        let farm = DiskFarm::in_memory(2);
        stage_requests(&farm, 3_000, GeneratorConfig::default());
        let cfg = ServeConfig::new(Layout::Flat, 125).with_exact_latencies();
        let report = serve(&cluster, &farm, &tree, &cfg);
        let exact = report.latency_exact.expect("exact path was requested");
        assert_eq!(exact.batches, report.latency.batches);
        assert_eq!(exact.max, report.latency.max, "max is exact in both");
        let tol = cfg.hist.rel_error();
        for (approx, e) in [
            (report.latency.p50, exact.p50),
            (report.latency.p99, exact.p99),
            (report.latency.p999, exact.p999),
        ] {
            assert!(
                approx >= e - 1e-15 && approx <= e * (1.0 + tol) + 1e-15,
                "histogram {approx} vs exact {e} outside relative error {tol}"
            );
        }
    }

    #[test]
    fn telemetry_produces_window_series_and_slo() {
        use crate::telemetry::{SloSpec, TelemetryConfig};

        let tree = tree();
        let cluster = Cluster::new(2);
        let farm = DiskFarm::in_memory(2);
        stage_requests(&farm, 2_000, GeneratorConfig::default());
        // First pass: measure the run to pick a window that yields
        // several windows and an SLO threshold above the observed p99.
        let probe = serve(&cluster, &farm, &tree, &ServeConfig::new(Layout::Flat, 100));
        let window = (probe.makespan - probe.deploy_seconds) / 8.0;
        let telemetry = TelemetryConfig::new(window).with_slo(SloSpec::p99(probe.latency.p99 * 2.0));
        let cfg = ServeConfig::new(Layout::Flat, 100).with_telemetry(telemetry);
        let report = serve(&cluster, &farm, &tree, &cfg);
        let t = report.telemetry.expect("telemetry was requested");
        assert_eq!(t.per_rank.len(), 2);
        assert!(!t.windows.is_empty());
        let batches: u64 = t.windows.iter().map(|w| w.batches).sum();
        assert_eq!(batches, report.latency.batches as u64, "every batch lands in a window");
        let records: u64 = t.windows.iter().map(|w| w.records).sum();
        assert_eq!(records, report.records);
        let slo = t.slo.expect("slo was configured");
        assert!(slo.compliance == 1.0, "threshold 2x p99 must be met");
        assert!(!slo.overloaded);
        // Telemetry observes, never perturbs: same makespan and bits.
        assert_eq!(report.makespan.to_bits(), probe.makespan.to_bits());
        assert_eq!(report.predictions, probe.predictions);
    }
}
