//! The batch/streaming scoring harness on the simulated machine.
//!
//! A serving run has three phases, mirroring a production deployment:
//!
//! 1. **Deploy** — rank 0 holds the compiled model and broadcasts it to
//!    every rank over the `cgm` collectives (span `serve.deploy`; the
//!    underlying `cgm.broadcast` span records the payload size, so model
//!    distribution shows up in traces as a first-class communication step).
//! 2. **Stream** — each rank streams its request shard from its own disk
//!    in `batch_records`-sized chunks through the ordinary
//!    [`pdc_pario`] read path; with a prefetching engine attached to the
//!    farm, the next batch's transfer rides under the current batch's
//!    scoring compute.
//! 3. **Score** — each batch is classified through the [`Predictor`]
//!    trait (span `serve.score`), charging the layout's traversal cost.
//!
//! Per batch the harness records the **virtual-clock latency** from the
//! start of the batch read to the last prediction; the report aggregates
//! sustained records/sec and p50/p99/p999 tail latency over all batches of
//! all ranks.

use pdc_cgm::{Cluster, ProcStats, Wire};
use pdc_clouds::DecisionTree;
use pdc_datagen::{GeneratorConfig, Record, RecordStream};
use pdc_pario::DiskFarm;

use crate::model::{CompiledModel, Layout};
use crate::predictor::Predictor;

/// Name of the per-rank request shard file on each disk.
pub const REQUESTS_FILE: &str = "serve_requests";

/// Configuration of one serving run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeConfig {
    /// Which compiled layout to deploy.
    pub layout: Layout,
    /// Records per scoring batch (also the streaming chunk size).
    pub batch_records: usize,
}

/// Latency percentiles over every batch of every rank, in virtual seconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencySummary {
    /// Number of batches observed.
    pub batches: usize,
    /// Median batch latency.
    pub p50: f64,
    /// 99th-percentile batch latency.
    pub p99: f64,
    /// 99.9th-percentile batch latency.
    pub p999: f64,
    /// Worst batch latency.
    pub max: f64,
}

/// Nearest-rank percentiles of a set of batch latencies.
pub fn latency_summary(mut latencies: Vec<f64>) -> LatencySummary {
    latencies.sort_by(f64::total_cmp);
    let pick = |q: f64| -> f64 {
        if latencies.is_empty() {
            return 0.0;
        }
        let rank = (q * latencies.len() as f64).ceil() as usize;
        latencies[rank.clamp(1, latencies.len()) - 1]
    };
    LatencySummary {
        batches: latencies.len(),
        p50: pick(0.50),
        p99: pick(0.99),
        p999: pick(0.999),
        max: latencies.last().copied().unwrap_or(0.0),
    }
}

/// Everything a serving run produces.
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// The deployed layout.
    pub layout: Layout,
    /// Batch size used.
    pub batch_records: usize,
    /// Total requests scored across all ranks.
    pub records: u64,
    /// Wire size of the broadcast model, bytes.
    pub model_bytes: usize,
    /// Nodes in the compiled model.
    pub model_nodes: usize,
    /// Virtual time until the slowest rank finished deployment.
    pub deploy_seconds: f64,
    /// Virtual makespan of the whole run (deploy + stream + score).
    pub makespan: f64,
    /// Sustained throughput: `records / makespan`.
    pub throughput_rps: f64,
    /// Batch latency percentiles.
    pub latency: LatencySummary,
    /// Per-rank predictions, one class byte per request, in shard order —
    /// the bit-identity contract across layouts is checked on these.
    pub predictions: Vec<Vec<u8>>,
    /// Per-rank virtual-clock statistics of the run.
    pub stats: Vec<ProcStats>,
}

/// Stage `total` generated request records onto the farm as contiguous
/// per-rank shards (file [`REQUESTS_FILE`] on each disk), uncharged — like
/// the training data, requests are assumed resident before the run starts.
/// Returns the number of records staged on each rank.
pub fn stage_requests(farm: &DiskFarm, total: u64, config: GeneratorConfig) -> Vec<u64> {
    let p = farm.nprocs();
    let mut stream = RecordStream::new(config);
    let mut shares = Vec::with_capacity(p);
    for rank in 0..p {
        let share = total / p as u64 + u64::from((rank as u64) < total % p as u64);
        let mut disk = farm.lock(rank);
        let file = disk.create::<Record>(REQUESTS_FILE);
        let mut left = share as usize;
        let mut buf = Vec::with_capacity(left.min(8_192));
        while left > 0 {
            let take = left.min(8_192);
            buf.clear();
            buf.extend(stream.by_ref().take(take));
            disk.append_uncharged(&file, &buf);
            left -= take;
        }
        shares.push(share);
    }
    shares
}

/// Run one serving experiment: compile `tree` into `cfg.layout`, broadcast
/// it from rank 0, stream each rank's [`REQUESTS_FILE`] shard in
/// `cfg.batch_records`-sized batches, score every record, and aggregate
/// throughput and tail latency. Compilation itself happens offline (before
/// the simulated run); the run charges deployment and scoring.
///
/// Predictions are bit-identical across layouts by construction; callers
/// that sweep layouts should still assert it (see
/// [`crate::model::assert_equivalent`] and the `fig_serving` harness).
///
/// ```
/// use pdc_cgm::Cluster;
/// use pdc_clouds::{DecisionTree, Splitter};
/// use pdc_datagen::GeneratorConfig;
/// use pdc_pario::DiskFarm;
/// use pdc_serve::{serve, stage_requests, Layout, ServeConfig};
///
/// let mut tree = DecisionTree::single_leaf(vec![6, 4]);
/// tree.split_leaf(
///     0,
///     Splitter::Numeric { attr: 2, threshold: 45.0 },
///     vec![6, 0],
///     vec![0, 4],
/// );
/// let farm = DiskFarm::in_memory(2);
/// stage_requests(&farm, 1_000, GeneratorConfig::default());
/// let report = serve(
///     &Cluster::new(2),
///     &farm,
///     &tree,
///     &ServeConfig { layout: Layout::Flat, batch_records: 128 },
/// );
/// assert_eq!(report.records, 1_000);
/// assert!(report.throughput_rps > 0.0);
/// assert_eq!(report.latency.batches, 8); // 4 batches per rank
/// ```
pub fn serve(
    cluster: &Cluster,
    farm: &DiskFarm,
    tree: &DecisionTree,
    cfg: &ServeConfig,
) -> ServeReport {
    assert!(cfg.batch_records > 0, "batch_records must be positive");
    assert_eq!(
        cluster.nprocs(),
        farm.nprocs(),
        "cluster and farm must have the same number of ranks"
    );
    let model = cfg.layout.compile(tree);
    let model_bytes = model.to_bytes().len();
    let model_nodes = model.num_nodes();
    let out = cluster.run(|proc| {
        // Deploy: rank 0 is the model owner; everyone receives a copy.
        let model: CompiledModel = proc.in_span("serve.deploy", &[], |proc| {
            let seed = (proc.rank() == 0).then(|| model.clone());
            proc.broadcast(0, seed)
        });
        let deploy_done = proc.clock();

        // Stream + score the local shard.
        let mut disk = farm.lock(proc.rank());
        let file = disk.open::<Record>(REQUESTS_FILE);
        let total = disk.num_records(&file);
        let mut reader = disk.reader(&file, cfg.batch_records);
        reader.prime(&mut disk, proc);
        let mut preds = Vec::with_capacity(total);
        let mut latencies = Vec::new();
        loop {
            let start = proc.clock();
            let Some(batch) = reader.next_chunk(&mut disk, proc) else {
                break;
            };
            proc.in_span("serve.score", &[("records", batch.len() as i64)], |proc| {
                model.score_batch(proc, &batch, &mut preds);
            });
            latencies.push(proc.clock() - start);
        }
        disk.sync_engine(proc);
        drop(disk);
        proc.barrier();
        (preds, latencies, deploy_done)
    });

    let makespan = out.makespan();
    let mut predictions = Vec::with_capacity(out.results.len());
    let mut all_latencies = Vec::new();
    let mut deploy_seconds = 0.0f64;
    let mut records = 0u64;
    for (preds, lats, deploy) in out.results {
        records += preds.len() as u64;
        predictions.push(preds);
        all_latencies.extend(lats);
        deploy_seconds = deploy_seconds.max(deploy);
    }
    ServeReport {
        layout: cfg.layout,
        batch_records: cfg.batch_records,
        records,
        model_bytes,
        model_nodes,
        deploy_seconds,
        makespan,
        throughput_rps: if makespan > 0.0 {
            records as f64 / makespan
        } else {
            0.0
        },
        latency: latency_summary(all_latencies),
        predictions,
        stats: out.stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ALL_LAYOUTS;
    use pdc_clouds::Splitter;

    fn tree() -> DecisionTree {
        let mut t = DecisionTree::single_leaf(vec![5, 5]);
        let (l, _) = t.split_leaf(
            0,
            Splitter::Numeric {
                attr: 0,
                threshold: 80_000.0,
            },
            vec![5, 0],
            vec![0, 5],
        );
        t.split_leaf(
            l,
            Splitter::Categorical {
                attr: 0,
                left_values: 0b0_0011,
            },
            vec![2, 1],
            vec![1, 2],
        );
        t
    }

    #[test]
    fn latency_summary_nearest_rank() {
        let s = latency_summary((1..=1000).map(|i| i as f64).collect());
        assert_eq!(s.batches, 1000);
        assert_eq!(s.p50, 500.0);
        assert_eq!(s.p99, 990.0);
        assert_eq!(s.p999, 999.0);
        assert_eq!(s.max, 1000.0);
        let empty = latency_summary(Vec::new());
        assert_eq!(empty.batches, 0);
        assert_eq!(empty.max, 0.0);
    }

    #[test]
    fn stage_requests_shards_evenly() {
        let farm = DiskFarm::in_memory(3);
        let shares = stage_requests(&farm, 1_001, GeneratorConfig::default());
        assert_eq!(shares, vec![334, 334, 333]);
        let total: usize = (0..3)
            .map(|r| {
                let disk = farm.lock(r);
                let f = disk.open::<Record>(REQUESTS_FILE);
                disk.num_records(&f)
            })
            .sum();
        assert_eq!(total, 1_001);
    }

    #[test]
    fn serve_scores_every_record_in_every_layout() {
        let tree = tree();
        let cluster = Cluster::new(2);
        let mut reference: Option<Vec<Vec<u8>>> = None;
        for layout in ALL_LAYOUTS {
            let farm = DiskFarm::in_memory(2);
            stage_requests(&farm, 600, GeneratorConfig::default());
            let report = serve(
                &cluster,
                &farm,
                &tree,
                &ServeConfig {
                    layout,
                    batch_records: 100,
                },
            );
            assert_eq!(report.records, 600);
            assert_eq!(report.latency.batches, 6);
            assert!(report.deploy_seconds > 0.0);
            assert!(report.makespan > report.deploy_seconds);
            assert!(report.latency.p50 <= report.latency.p999);
            match &reference {
                None => reference = Some(report.predictions.clone()),
                Some(reference) => assert_eq!(
                    &report.predictions, reference,
                    "layout {} predictions must be byte-identical",
                    layout.name()
                ),
            }
        }
    }

    #[test]
    fn flat_serves_faster_than_pointer() {
        let tree = tree();
        let cluster = Cluster::new(2);
        let run = |layout| {
            let farm = DiskFarm::in_memory(2);
            stage_requests(&farm, 2_000, GeneratorConfig::default());
            serve(
                &cluster,
                &farm,
                &tree,
                &ServeConfig {
                    layout,
                    batch_records: 250,
                },
            )
        };
        let pointer = run(Layout::Pointer);
        let flat = run(Layout::Flat);
        assert!(
            flat.throughput_rps > pointer.throughput_rps,
            "flat {} rps must beat pointer {} rps",
            flat.throughput_rps,
            pointer.throughput_rps
        );
        assert!(flat.model_bytes < pointer.model_bytes);
    }
}
