//! Serving a bagged ensemble: majority vote over compiled per-tree
//! layouts.
//!
//! An [`EnsemblePredictor`] compiles each member tree into one chosen
//! [`Layout`] and classifies by majority vote (ties toward the lower class
//! id, matching training-side voting). It implements [`Predictor`] and
//! [`Wire`], so the ordinary harness pipeline — broadcast deploy, shard
//! streaming, batch scoring — serves ensembles through
//! [`crate::harness::serve_model`] unchanged.

use pdc_cgm::wire::{DecodeResult, Wire};
use pdc_cgm::{OpKind, Proc};
use pdc_clouds::DecisionTree;
use pdc_datagen::{Record, NUM_CLASSES};

use crate::model::{CompiledModel, Layout};
use crate::predictor::Predictor;

/// A compiled bagged ensemble: every member tree in the same serving
/// layout, classified by majority vote.
#[derive(Debug, Clone, PartialEq)]
pub struct EnsemblePredictor {
    members: Vec<CompiledModel>,
}

impl EnsemblePredictor {
    /// Compile every member tree into `layout`.
    pub fn compile(trees: &[DecisionTree], layout: Layout) -> Self {
        assert!(!trees.is_empty(), "an ensemble needs at least one member");
        EnsemblePredictor {
            members: trees.iter().map(|t| layout.compile(t)).collect(),
        }
    }

    /// The compiled member models, in tree-id order.
    pub fn members(&self) -> &[CompiledModel] {
        &self.members
    }

    /// Winning class of a vote tally, ties toward the lower class id.
    fn majority(votes: &[u32; NUM_CLASSES]) -> u8 {
        let mut best = 0usize;
        for c in 1..NUM_CLASSES {
            if votes[c] > votes[best] {
                best = c;
            }
        }
        best as u8
    }
}

impl Predictor for EnsemblePredictor {
    fn layout_name(&self) -> &'static str {
        self.members[0].layout_name()
    }

    fn predict(&self, r: &Record) -> u8 {
        let mut votes = [0u32; NUM_CLASSES];
        for m in &self.members {
            votes[m.predict(r) as usize] += 1;
        }
        Self::majority(&votes)
    }

    fn num_nodes(&self) -> usize {
        self.members.iter().map(Predictor::num_nodes).sum()
    }

    fn footprint_bytes(&self) -> usize {
        self.members.iter().map(Predictor::footprint_bytes).sum()
    }

    fn score_batch(&self, proc: &mut Proc, records: &[Record], out: &mut Vec<u8>) {
        // Tree-at-a-time batch scoring: each member sweeps the whole batch
        // (charging its own traversal cost), then the votes are folded —
        // one accumulate per (record, member) against the vote table.
        let mut per_member: Vec<u8> = Vec::with_capacity(records.len());
        let mut votes = vec![[0u32; NUM_CLASSES]; records.len()];
        for m in &self.members {
            per_member.clear();
            m.score_batch(proc, records, &mut per_member);
            for (v, &class) in votes.iter_mut().zip(&per_member) {
                v[class as usize] += 1;
            }
        }
        proc.charge_ws(
            OpKind::Misc,
            (records.len() * self.members.len()) as u64,
            votes.len() * std::mem::size_of::<[u32; NUM_CLASSES]>(),
        );
        out.extend(votes.iter().map(Self::majority));
    }
}

impl Wire for EnsemblePredictor {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.members.encode(buf);
    }

    fn decode(buf: &mut &[u8]) -> DecodeResult<Self> {
        Ok(EnsemblePredictor {
            members: Vec::<CompiledModel>::decode(buf)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdc_cgm::Cluster;
    use pdc_clouds::Splitter;
    use pdc_datagen::{generate, GeneratorConfig};

    fn stump(attr: usize, threshold: f64) -> DecisionTree {
        let mut t = DecisionTree::single_leaf(vec![5, 5]);
        t.split_leaf(
            0,
            Splitter::Numeric { attr, threshold },
            vec![5, 0],
            vec![0, 5],
        );
        t
    }

    #[test]
    fn vote_matches_member_majority() {
        let trees = vec![stump(0, 40_000.0), stump(0, 60_000.0), stump(2, 50.0)];
        let ens = EnsemblePredictor::compile(&trees, Layout::Flat);
        for r in generate(300, GeneratorConfig::default()) {
            let mut votes = [0u32; NUM_CLASSES];
            for t in &trees {
                votes[t.predict(&r) as usize] += 1;
            }
            let expect = if votes[1] > votes[0] { 1 } else { 0 };
            assert_eq!(ens.predict(&r), expect);
        }
    }

    #[test]
    fn every_layout_serves_the_same_votes() {
        let trees = vec![stump(0, 40_000.0), stump(1, 50_000.0)];
        let records = generate(200, GeneratorConfig::default());
        let reference = EnsemblePredictor::compile(&trees, Layout::Pointer).predict_all(&records);
        for layout in [Layout::Flat, Layout::Predicated] {
            let got = EnsemblePredictor::compile(&trees, layout).predict_all(&records);
            assert_eq!(got, reference, "{} layout diverges", layout.name());
        }
    }

    #[test]
    fn wire_round_trip() {
        let ens =
            EnsemblePredictor::compile(&[stump(0, 40_000.0), stump(2, 50.0)], Layout::Predicated);
        let back = EnsemblePredictor::from_bytes(&ens.to_bytes()).unwrap();
        assert_eq!(ens, back);
    }

    #[test]
    fn score_batch_charges_every_member() {
        let records = generate(128, GeneratorConfig::default());
        let one = EnsemblePredictor::compile(&[stump(0, 40_000.0)], Layout::Flat);
        let three = EnsemblePredictor::compile(
            &[stump(0, 40_000.0), stump(0, 40_000.0), stump(0, 40_000.0)],
            Layout::Flat,
        );
        let cost = |ens: &EnsemblePredictor| {
            Cluster::new(1)
                .run(|proc| {
                    let mut out = Vec::new();
                    ens.score_batch(proc, &records, &mut out);
                    out
                })
                .makespan()
        };
        assert!(cost(&three) > cost(&one), "three members must cost more");
    }
}
