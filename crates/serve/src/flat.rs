//! Flat serving layout: the tree compiled into one contiguous,
//! breadth-first node array with `u32` child indices.
//!
//! This is the QuickScorer-era observation applied to a single tree: at
//! serving time the training arena's enum nodes, heap-allocated class
//! counts and pointer-sized ids are pure overhead. Compilation strips a
//! node down to 16 bytes — child index, packed attribute id, leaf class and
//! the 8-byte test payload (threshold bits or category bitmask) — and lays
//! siblings out adjacently in breadth-first order, so the hot top levels of
//! the tree share cache lines and a child access is an indexed load into
//! one slice instead of a dependent pointer chase.

use pdc_cgm::wire::{DecodeResult, Wire};
use pdc_cgm::{OpKind, Proc};
use pdc_clouds::{DecisionTree, Node, Splitter};
use pdc_datagen::{Record, NUM_NUMERIC};

use crate::predictor::Predictor;

/// One compiled node: 16 bytes, no heap.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlatNode {
    /// Breadth-first index of the left child; the right child is
    /// `first_child + 1`. `0` marks a leaf (the root is never a child).
    pub first_child: u32,
    /// Attribute id: `< NUM_NUMERIC` selects a numeric attribute,
    /// otherwise `attr - NUM_NUMERIC` selects a categorical one.
    pub attr: u16,
    /// Predicted class (meaningful on leaves).
    pub class: u8,
    /// Test payload: numeric threshold as `f64` bits, or the categorical
    /// left-branch bitmask.
    pub test: u64,
}

impl FlatNode {
    fn leaf(class: u8) -> Self {
        FlatNode {
            first_child: 0,
            attr: 0,
            class,
            test: 0,
        }
    }
}

impl Wire for FlatNode {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.first_child.encode(buf);
        self.attr.encode(buf);
        self.class.encode(buf);
        self.test.encode(buf);
    }

    fn decode(bytes: &mut &[u8]) -> DecodeResult<Self> {
        Ok(FlatNode {
            first_child: u32::decode(bytes)?,
            attr: u16::decode(bytes)?,
            class: u8::decode(bytes)?,
            test: u64::decode(bytes)?,
        })
    }
}

/// A tree compiled into a breadth-first [`FlatNode`] array.
///
/// Predictions are bit-identical to the source [`DecisionTree`]: the
/// compiler preserves every threshold's `f64` bits and every categorical
/// bitmask, and the traversal applies the exact tests of
/// [`Splitter::goes_left`].
///
/// ```
/// use pdc_clouds::{DecisionTree, Splitter};
/// use pdc_datagen::{generate, GeneratorConfig};
/// use pdc_serve::{FlatTree, Predictor};
///
/// let mut tree = DecisionTree::single_leaf(vec![8, 8]);
/// let (left, _) = tree.split_leaf(
///     0,
///     Splitter::Numeric { attr: 2, threshold: 40.0 },
///     vec![8, 0],
///     vec![0, 8],
/// );
/// tree.split_leaf(
///     left,
///     Splitter::Categorical { attr: 0, left_values: 0b110 },
///     vec![4, 0],
///     vec![4, 0],
/// );
/// let flat = FlatTree::compile(&tree);
/// assert_eq!(flat.num_nodes(), 5); // breadth-first, reachable nodes only
/// for r in generate(100, GeneratorConfig::default()) {
///     assert_eq!(flat.predict(&r), tree.predict(&r));
/// }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FlatTree {
    nodes: Vec<FlatNode>,
}

/// Pack a [`Splitter`] into the `(attr, test)` pair of a [`FlatNode`].
fn pack_splitter(s: &Splitter) -> (u16, u64) {
    match *s {
        Splitter::Numeric { attr, threshold } => (attr as u16, threshold.to_bits()),
        Splitter::Categorical { attr, left_values } => {
            ((NUM_NUMERIC + attr) as u16, left_values)
        }
    }
}

impl FlatTree {
    /// Compile a built tree: breadth-first walk of the *reachable* nodes
    /// (pruning and grafting can orphan arena entries; those are dropped),
    /// siblings adjacent, children addressed by `u32` index.
    pub fn compile(tree: &DecisionTree) -> FlatTree {
        let mut order = vec![tree.root()];
        let mut nodes: Vec<FlatNode> = Vec::new();
        let mut head = 0;
        while head < order.len() {
            let id = order[head];
            head += 1;
            match &tree.nodes[id] {
                Node::Leaf { class, .. } => nodes.push(FlatNode::leaf(*class)),
                Node::Internal {
                    splitter,
                    left,
                    right,
                    ..
                } => {
                    let first_child =
                        u32::try_from(order.len()).expect("tree exceeds u32 node indices");
                    order.push(*left);
                    order.push(*right);
                    let (attr, test) = pack_splitter(splitter);
                    nodes.push(FlatNode {
                        first_child,
                        attr,
                        class: 0,
                        test,
                    });
                }
            }
        }
        FlatTree { nodes }
    }

    /// The compiled node array (breadth-first; index 0 is the root).
    pub fn nodes(&self) -> &[FlatNode] {
        &self.nodes
    }

    /// Split tests on the root-to-leaf path of `r`.
    fn path_len(&self, r: &Record) -> u64 {
        let mut i = 0usize;
        let mut steps = 0;
        loop {
            let n = &self.nodes[i];
            if n.first_child == 0 {
                return steps;
            }
            steps += 1;
            i = n.first_child as usize + !test_goes_left(n, r) as usize;
        }
    }
}

/// Apply a flat node's test — exactly [`Splitter::goes_left`] on the packed
/// representation.
#[inline]
fn test_goes_left(n: &FlatNode, r: &Record) -> bool {
    if (n.attr as usize) < NUM_NUMERIC {
        r.num(n.attr as usize) <= f64::from_bits(n.test)
    } else {
        n.test & (1u64 << r.cat(n.attr as usize - NUM_NUMERIC)) != 0
    }
}

impl Predictor for FlatTree {
    fn layout_name(&self) -> &'static str {
        "flat"
    }

    fn predict(&self, r: &Record) -> u8 {
        let mut i = 0usize;
        loop {
            let n = &self.nodes[i];
            if n.first_child == 0 {
                return n.class;
            }
            i = n.first_child as usize + !test_goes_left(n, r) as usize;
        }
    }

    fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    fn footprint_bytes(&self) -> usize {
        self.nodes.len() * std::mem::size_of::<FlatNode>()
    }

    fn score_batch(&self, proc: &mut Proc, records: &[Record], out: &mut Vec<u8>) {
        let mut steps = 0u64;
        for r in records {
            steps += self.path_len(r);
            out.push(self.predict(r));
        }
        // Same split tests and branches as the pointer tree, but no
        // dependent-load charge, against a far smaller working set.
        let ws = self.footprint_bytes();
        proc.charge_ws(OpKind::SplitTest, steps, ws);
        proc.charge_ws(OpKind::Compare, steps, ws);
    }
}

impl Wire for FlatTree {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.nodes.encode(buf);
    }

    fn decode(bytes: &mut &[u8]) -> DecodeResult<Self> {
        Ok(FlatTree {
            nodes: Vec::<FlatNode>::decode(bytes)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdc_datagen::{generate, GeneratorConfig};

    fn mixed_tree() -> DecisionTree {
        let mut t = DecisionTree::single_leaf(vec![10, 10]);
        let (l, r) = t.split_leaf(
            0,
            Splitter::Numeric {
                attr: 0,
                threshold: 70_000.0,
            },
            vec![10, 0],
            vec![0, 10],
        );
        t.split_leaf(
            l,
            Splitter::Categorical {
                attr: 2,
                left_values: 0b1_0101,
            },
            vec![5, 0],
            vec![5, 0],
        );
        t.split_leaf(
            r,
            Splitter::Numeric {
                attr: 2,
                threshold: 45.0,
            },
            vec![0, 5],
            vec![0, 5],
        );
        t
    }

    #[test]
    fn node_is_sixteen_bytes() {
        assert_eq!(std::mem::size_of::<FlatNode>(), 16);
    }

    #[test]
    fn compile_is_breadth_first() {
        let flat = FlatTree::compile(&mixed_tree());
        assert_eq!(flat.num_nodes(), 7);
        // Root's children are adjacent right after it.
        assert_eq!(flat.nodes()[0].first_child, 1);
        // Level-2 internals hand out the next sibling pairs in order.
        assert_eq!(flat.nodes()[1].first_child, 3);
        assert_eq!(flat.nodes()[2].first_child, 5);
        for leaf in &flat.nodes()[3..] {
            assert_eq!(leaf.first_child, 0);
        }
    }

    #[test]
    fn predictions_match_the_source_tree() {
        let tree = mixed_tree();
        let flat = FlatTree::compile(&tree);
        for r in generate(500, GeneratorConfig::default()) {
            assert_eq!(flat.predict(&r), tree.predict(&r));
        }
    }

    #[test]
    fn single_leaf_compiles_and_predicts() {
        let tree = DecisionTree::single_leaf(vec![0, 3]);
        let flat = FlatTree::compile(&tree);
        assert_eq!(flat.num_nodes(), 1);
        let r = generate(1, GeneratorConfig::default())[0];
        assert_eq!(flat.predict(&r), 1);
        assert_eq!(flat.path_len(&r), 0);
    }

    #[test]
    fn wire_roundtrip() {
        let flat = FlatTree::compile(&mixed_tree());
        let bytes = flat.to_bytes();
        assert_eq!(FlatTree::from_bytes(&bytes).unwrap(), flat);
    }

    #[test]
    fn footprint_is_compact() {
        let tree = mixed_tree();
        let flat = FlatTree::compile(&tree);
        assert_eq!(flat.footprint_bytes(), 7 * 16);
    }
}
