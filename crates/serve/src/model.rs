//! Layout selection and the broadcastable [`CompiledModel`].

use pdc_cgm::wire::{DecodeError, DecodeResult, Wire};
use pdc_cgm::Proc;
use pdc_clouds::DecisionTree;
use pdc_datagen::Record;

use crate::flat::FlatTree;
use crate::predicated::PredicatedTree;
use crate::predictor::{PointerPredictor, Predictor};

/// The serving layouts, in ascending order of compilation effort.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Layout {
    /// Serve from the training-time arena (baseline).
    Pointer,
    /// Breadth-first contiguous node array, `u32` children.
    Flat,
    /// Branch-free padded traversal over the flat array.
    Predicated,
}

/// Every layout, for sweeps.
pub const ALL_LAYOUTS: [Layout; 3] = [Layout::Pointer, Layout::Flat, Layout::Predicated];

impl Layout {
    /// Short name used in span attributes, CSV columns and reports.
    pub fn name(self) -> &'static str {
        match self {
            Layout::Pointer => "pointer",
            Layout::Flat => "flat",
            Layout::Predicated => "predicated",
        }
    }

    /// Compile a built tree into this layout.
    pub fn compile(self, tree: &DecisionTree) -> CompiledModel {
        match self {
            Layout::Pointer => CompiledModel::Pointer(PointerPredictor::new(tree.clone())),
            Layout::Flat => CompiledModel::Flat(FlatTree::compile(tree)),
            Layout::Predicated => CompiledModel::Predicated(PredicatedTree::compile(tree)),
        }
    }
}

/// A compiled model in one of the serving layouts.
///
/// The enum (rather than a trait object) keeps the model [`Wire`]-encodable
/// so the harness can broadcast it to every rank with the ordinary `cgm`
/// collectives, and makes "every layout implements [`Predictor`]" a
/// compile-time fact: adding a variant without the delegation below is a
/// build error.
#[derive(Debug, Clone, PartialEq)]
pub enum CompiledModel {
    /// The pointer-tree baseline.
    Pointer(PointerPredictor),
    /// The flat array.
    Flat(FlatTree),
    /// The predicated flat array.
    Predicated(PredicatedTree),
}

impl CompiledModel {
    /// Which layout this model is compiled into.
    pub fn layout(&self) -> Layout {
        match self {
            CompiledModel::Pointer(_) => Layout::Pointer,
            CompiledModel::Flat(_) => Layout::Flat,
            CompiledModel::Predicated(_) => Layout::Predicated,
        }
    }

    fn inner(&self) -> &dyn Predictor {
        match self {
            CompiledModel::Pointer(p) => p,
            CompiledModel::Flat(f) => f,
            CompiledModel::Predicated(p) => p,
        }
    }
}

impl Predictor for CompiledModel {
    fn layout_name(&self) -> &'static str {
        self.inner().layout_name()
    }

    fn predict(&self, r: &Record) -> u8 {
        self.inner().predict(r)
    }

    fn num_nodes(&self) -> usize {
        self.inner().num_nodes()
    }

    fn footprint_bytes(&self) -> usize {
        self.inner().footprint_bytes()
    }

    fn score_batch(&self, proc: &mut Proc, records: &[Record], out: &mut Vec<u8>) {
        self.inner().score_batch(proc, records, out)
    }
}

impl Wire for CompiledModel {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            CompiledModel::Pointer(p) => {
                buf.push(0);
                p.tree().encode(buf);
            }
            CompiledModel::Flat(f) => {
                buf.push(1);
                f.encode(buf);
            }
            CompiledModel::Predicated(p) => {
                buf.push(2);
                p.encode(buf);
            }
        }
    }

    fn decode(bytes: &mut &[u8]) -> DecodeResult<Self> {
        match u8::decode(bytes)? {
            0 => Ok(CompiledModel::Pointer(PointerPredictor::new(
                DecisionTree::decode(bytes)?,
            ))),
            1 => Ok(CompiledModel::Flat(FlatTree::decode(bytes)?)),
            2 => Ok(CompiledModel::Predicated(PredicatedTree::decode(bytes)?)),
            _ => Err(DecodeError {
                what: "compiled-model layout tag out of range",
                remaining: bytes.len(),
                trailing: false,
            }),
        }
    }
}

/// Assert that every layout predicts **byte-identically** to the source
/// tree on every record of `records`. Panics with the offending layout and
/// record index otherwise. This is the equivalence contract the parity
/// tests and the `fig_serving` harness both lean on.
pub fn assert_equivalent(tree: &DecisionTree, records: &[Record]) {
    let reference: Vec<u8> = records.iter().map(|r| tree.predict(r)).collect();
    for layout in ALL_LAYOUTS {
        let model = layout.compile(tree);
        for (i, r) in records.iter().enumerate() {
            let got = model.predict(r);
            assert_eq!(
                got, reference[i],
                "layout {} diverges from the pointer tree on record {i}",
                layout.name()
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdc_clouds::Splitter;
    use pdc_datagen::{generate, GeneratorConfig};

    fn tree() -> DecisionTree {
        let mut t = DecisionTree::single_leaf(vec![7, 7]);
        t.split_leaf(
            0,
            Splitter::Numeric {
                attr: 5,
                threshold: 250_000.0,
            },
            vec![7, 0],
            vec![0, 7],
        );
        t
    }

    #[test]
    fn every_layout_roundtrips_on_the_wire() {
        let tree = tree();
        let records = generate(100, GeneratorConfig::default());
        for layout in ALL_LAYOUTS {
            let model = layout.compile(&tree);
            assert_eq!(model.layout(), layout);
            assert_eq!(model.layout_name(), layout.name());
            let decoded = CompiledModel::from_bytes(&model.to_bytes()).unwrap();
            assert_eq!(decoded, model);
            for r in &records {
                assert_eq!(decoded.predict(r), tree.predict(r));
            }
        }
    }

    #[test]
    fn bad_tag_is_a_decode_error() {
        assert!(CompiledModel::from_bytes(&[9]).is_err());
    }

    #[test]
    fn assert_equivalent_accepts_the_layouts() {
        let records = generate(200, GeneratorConfig::default());
        assert_equivalent(&tree(), &records);
    }

    #[test]
    fn footprints_shrink_from_pointer_to_flat() {
        let tree = tree();
        let pointer = Layout::Pointer.compile(&tree);
        let flat = Layout::Flat.compile(&tree);
        assert!(flat.footprint_bytes() < pointer.footprint_bytes());
        assert_eq!(pointer.num_nodes(), flat.num_nodes());
    }
}
