//! Predicated serving layout: branch-free traversal over the flat array.
//!
//! The flat layout still takes one unpredictable branch per node — the
//! split outcome — which on real hardware costs a pipeline flush about half
//! the time at 50/50 splits. The predicated layout removes it the way
//! QuickScorer-style rankers do: every step evaluates *both* the numeric
//! and the categorical test unconditionally, selects the surviving child
//! with integer arithmetic (a conditional move, never a jump), and every
//! record walks exactly `depth` steps — leaves loop onto themselves, so a
//! record that reaches a shallow leaf idles in place for the remaining
//! steps. The trade is explicit: no branch charge per step, but `depth`
//! steps per record instead of the record's actual path length, and a
//! wider 32-byte node. Which side wins depends on how balanced the tree
//! is — exactly what `fig_serving` ablates.

use pdc_cgm::wire::{DecodeResult, Wire};
use pdc_cgm::{OpKind, Proc};
use pdc_clouds::{DecisionTree, Node, Splitter};
use pdc_datagen::Record;

use crate::predictor::Predictor;

/// One predicated node: 32 bytes, every field valid on every node so no
/// step ever branches on node kind.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PredNode {
    /// `[left, right]` step targets; leaves point both at themselves.
    pub children: [u32; 2],
    /// Numeric threshold (0.0 on categorical tests and leaves — evaluated
    /// regardless, selected away arithmetically).
    pub thr: f64,
    /// Categorical left-branch bitmask (0 on numeric tests and leaves).
    pub mask: u64,
    /// Numeric attribute index (always in range; 0 when unused).
    pub nattr: u16,
    /// Categorical attribute index (always in range; 0 when unused).
    pub cattr: u16,
    /// 1 selects the categorical test, 0 the numeric one.
    pub is_cat: u16,
    /// Predicted class (meaningful on leaves).
    pub class: u8,
}

impl Wire for PredNode {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.children[0].encode(buf);
        self.children[1].encode(buf);
        self.thr.encode(buf);
        self.mask.encode(buf);
        self.nattr.encode(buf);
        self.cattr.encode(buf);
        self.is_cat.encode(buf);
        self.class.encode(buf);
    }

    fn decode(bytes: &mut &[u8]) -> DecodeResult<Self> {
        Ok(PredNode {
            children: [u32::decode(bytes)?, u32::decode(bytes)?],
            thr: f64::decode(bytes)?,
            mask: u64::decode(bytes)?,
            nattr: u16::decode(bytes)?,
            cattr: u16::decode(bytes)?,
            is_cat: u16::decode(bytes)?,
            class: u8::decode(bytes)?,
        })
    }
}

/// A tree compiled for branch-free traversal (see the module docs).
///
/// Predictions are bit-identical to the source [`DecisionTree`]: each step
/// applies the exact test of [`Splitter::goes_left`], merely selecting the
/// result arithmetically instead of branching on the splitter kind.
#[derive(Debug, Clone, PartialEq)]
pub struct PredicatedTree {
    nodes: Vec<PredNode>,
    depth: u32,
}

impl PredicatedTree {
    /// Compile a built tree: breadth-first node order (shared with
    /// [`crate::FlatTree`]), leaves self-looped, padded traversal depth
    /// equal to the tree's depth.
    pub fn compile(tree: &DecisionTree) -> PredicatedTree {
        let mut order = vec![tree.root()];
        let mut nodes: Vec<PredNode> = Vec::new();
        let mut head = 0;
        while head < order.len() {
            let id = order[head];
            let my_index = head as u32;
            head += 1;
            match &tree.nodes[id] {
                Node::Leaf { class, .. } => nodes.push(PredNode {
                    children: [my_index, my_index],
                    thr: 0.0,
                    mask: 0,
                    nattr: 0,
                    cattr: 0,
                    is_cat: 0,
                    class: *class,
                }),
                Node::Internal {
                    splitter,
                    left,
                    right,
                    ..
                } => {
                    let first_child =
                        u32::try_from(order.len()).expect("tree exceeds u32 node indices");
                    order.push(*left);
                    order.push(*right);
                    let node = match *splitter {
                        Splitter::Numeric { attr, threshold } => PredNode {
                            children: [first_child, first_child + 1],
                            thr: threshold,
                            mask: 0,
                            nattr: attr as u16,
                            cattr: 0,
                            is_cat: 0,
                            class: 0,
                        },
                        Splitter::Categorical { attr, left_values } => PredNode {
                            children: [first_child, first_child + 1],
                            thr: 0.0,
                            mask: left_values,
                            nattr: 0,
                            cattr: attr as u16,
                            is_cat: 1,
                            class: 0,
                        },
                    };
                    nodes.push(node);
                }
            }
        }
        PredicatedTree {
            nodes,
            depth: tree.depth() as u32,
        }
    }

    /// Steps every record walks (the source tree's depth).
    pub fn depth(&self) -> u32 {
        self.depth
    }

    /// The compiled node array (breadth-first; index 0 is the root).
    pub fn nodes(&self) -> &[PredNode] {
        &self.nodes
    }
}

impl Predictor for PredicatedTree {
    fn layout_name(&self) -> &'static str {
        "predicated"
    }

    fn predict(&self, r: &Record) -> u8 {
        let mut i = 0u32;
        for _ in 0..self.depth {
            let n = &self.nodes[i as usize];
            let num_left = (r.numeric[n.nattr as usize] <= n.thr) as u32;
            let cat_left = ((n.mask >> r.categorical[n.cattr as usize]) & 1) as u32;
            let is_cat = n.is_cat as u32;
            let left = is_cat * cat_left + (1 - is_cat) * num_left;
            i = n.children[(1 - left) as usize];
        }
        self.nodes[i as usize].class
    }

    fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    fn footprint_bytes(&self) -> usize {
        self.nodes.len() * std::mem::size_of::<PredNode>()
    }

    fn score_batch(&self, proc: &mut Proc, records: &[Record], out: &mut Vec<u8>) {
        for r in records {
            out.push(self.predict(r));
        }
        // Exactly `depth` conditional-move steps per record, no branch
        // charge — the padded, branch-free schedule.
        let steps = records.len() as u64 * self.depth as u64;
        proc.charge_ws(OpKind::SplitTest, steps, self.footprint_bytes());
    }
}

impl Wire for PredicatedTree {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.nodes.encode(buf);
        self.depth.encode(buf);
    }

    fn decode(bytes: &mut &[u8]) -> DecodeResult<Self> {
        Ok(PredicatedTree {
            nodes: Vec::<PredNode>::decode(bytes)?,
            depth: u32::decode(bytes)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdc_datagen::{generate, GeneratorConfig};

    fn lopsided_tree() -> DecisionTree {
        // Left chain of depth 3 with a shallow right leaf at every level.
        let mut t = DecisionTree::single_leaf(vec![8, 8]);
        let mut at = 0;
        for step in 0..3 {
            let (l, _) = t.split_leaf(
                at,
                Splitter::Numeric {
                    attr: 2,
                    threshold: 30.0 + 10.0 * step as f64,
                },
                vec![4, 0],
                vec![0, 4],
            );
            at = l;
        }
        t
    }

    #[test]
    fn node_is_thirty_two_bytes() {
        assert_eq!(std::mem::size_of::<PredNode>(), 32);
    }

    #[test]
    fn padded_walk_matches_the_source_tree() {
        let tree = lopsided_tree();
        let pred = PredicatedTree::compile(&tree);
        assert_eq!(pred.depth(), 3);
        for r in generate(500, GeneratorConfig::default()) {
            assert_eq!(pred.predict(&r), tree.predict(&r));
        }
    }

    #[test]
    fn leaves_self_loop() {
        let pred = PredicatedTree::compile(&lopsided_tree());
        for (i, n) in pred.nodes().iter().enumerate() {
            if n.children[0] as usize == i {
                assert_eq!(n.children[1] as usize, i, "leaf must self-loop both ways");
            }
        }
    }

    #[test]
    fn single_leaf_takes_zero_steps() {
        let tree = DecisionTree::single_leaf(vec![9, 1]);
        let pred = PredicatedTree::compile(&tree);
        assert_eq!(pred.depth(), 0);
        let r = generate(1, GeneratorConfig::default())[0];
        assert_eq!(pred.predict(&r), 0);
    }

    #[test]
    fn categorical_only_tree_matches() {
        let mut tree = DecisionTree::single_leaf(vec![6, 6]);
        let (l, _) = tree.split_leaf(
            0,
            Splitter::Categorical {
                attr: 1,
                left_values: 0b1010_1010_1010_1010_1010,
            },
            vec![6, 0],
            vec![0, 6],
        );
        tree.split_leaf(
            l,
            Splitter::Categorical {
                attr: 0,
                left_values: 0b0_0111,
            },
            vec![3, 0],
            vec![3, 0],
        );
        let pred = PredicatedTree::compile(&tree);
        for r in generate(500, GeneratorConfig::default()) {
            assert_eq!(pred.predict(&r), tree.predict(&r));
        }
    }

    #[test]
    fn wire_roundtrip() {
        let pred = PredicatedTree::compile(&lopsided_tree());
        let bytes = pred.to_bytes();
        assert_eq!(PredicatedTree::from_bytes(&bytes).unwrap(), pred);
    }
}
