//! # pdc-serve — the serving path: compiled predictors at production throughput
//!
//! The paper's pipeline ends when the tree is built; this crate opens the
//! second half of the production story. A trained
//! [`pdc_clouds::DecisionTree`] is **compiled** into one of three serving
//! layouts behind a single [`Predictor`] trait:
//!
//! * [`PointerPredictor`] — the training arena as-is (baseline),
//! * [`FlatTree`] — a contiguous breadth-first node array with `u32` child
//!   indices and 16-byte nodes,
//! * [`PredicatedTree`] — a branch-free padded-depth variant of the flat
//!   array (conditional moves instead of branches, QuickScorer-style).
//!
//! Every layout returns **bit-identical predictions** to the pointer tree
//! on every record — layouts change cost, never answers — and the
//! [`model::assert_equivalent`] helper plus the parity test suite enforce
//! it across all SLIQ generator functions and edge-shaped trees.
//!
//! On top of the layouts, [`harness::serve`] runs a production-shaped
//! scoring loop on the simulated machine: broadcast the compiled model to
//! all ranks (a first-class communication step, recorded in spans), stream
//! request shards from each rank's disk through the asynchronous
//! [`pdc_pario`] engine, and measure sustained records/sec plus
//! p50/p99/p999 virtual-clock tail latency per batch. The `fig_serving`
//! bench ablates layout × batch size × engine and asserts the performance
//! contract (flat strictly faster than pointer, predictions identical).
//!
//! ```
//! use pdc_clouds::{DecisionTree, Splitter};
//! use pdc_datagen::{generate, GeneratorConfig};
//! use pdc_serve::{assert_equivalent, Layout, Predictor};
//!
//! let mut tree = DecisionTree::single_leaf(vec![3, 7]);
//! tree.split_leaf(
//!     0,
//!     Splitter::Numeric { attr: 2, threshold: 55.0 },
//!     vec![3, 0],
//!     vec![0, 7],
//! );
//! let records = generate(256, GeneratorConfig::default());
//! assert_equivalent(&tree, &records); // all layouts, bit for bit
//! let flat = Layout::Flat.compile(&tree);
//! assert_eq!(flat.predict(&records[0]), tree.predict(&records[0]));
//! ```

#![warn(missing_docs)]

pub mod ensemble;
pub mod flat;
pub mod harness;
pub mod model;
pub mod predicated;
pub mod predictor;
pub mod telemetry;

pub use ensemble::EnsemblePredictor;
pub use flat::{FlatNode, FlatTree};
pub use harness::{
    latency_summary, serve, serve_ensemble, serve_model, stage_requests, LatencySummary,
    ServeConfig, ServeReport, REQUESTS_FILE,
};
pub use model::{assert_equivalent, CompiledModel, Layout, ALL_LAYOUTS};
pub use predicated::{PredNode, PredicatedTree};
pub use predictor::{PointerPredictor, Predictor};
pub use telemetry::{
    evaluate_slo, merge_windows, SloReport, SloSpec, TelemetryConfig, TelemetryReport,
    WindowRecorder, WindowSlo, WindowStats,
};
