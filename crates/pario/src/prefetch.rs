//! Prefetch scheduling: turning access patterns into speculative reads.
//!
//! Two hint sources feed [`crate::engine::IoEngine::prefetch`]:
//!
//! * **Task lookahead** — when the `dnc` scheduler starts task *k*, it hints
//!   the files of task *k+1* (see `OocProblem::prefetch_task` in `pdc-dnc`),
//!   so the next task's first read finds its pages in flight or resident.
//!   This is the paper's *compute-independent* parallel I/O: device transfer
//!   for future work overlapped with current compute.
//! * **Sequential read-ahead** — [`ReadAhead`] rides inside
//!   [`crate::ChunkedReader`]: after each chunk is consumed it requests the
//!   next window, so a streaming scan hides one chunk of device time behind
//!   each chunk of compute.

/// Sequential read-ahead policy for a chunked scan: after the cursor
/// advances, speculatively request the next `window_records` records.
#[derive(Debug, Clone)]
pub struct ReadAhead {
    window_records: usize,
}

impl ReadAhead {
    /// Read ahead one window of `window_records` (typically the scan's own
    /// chunk size: each chunk of compute hides the next chunk of I/O).
    pub fn new(window_records: usize) -> Self {
        assert!(window_records > 0, "window_records must be positive");
        ReadAhead { window_records }
    }

    /// The `(start, count)` record range to request after the scan cursor
    /// reached `cursor` of `total` records, or `None` at end of file.
    pub fn next_window(&self, cursor: usize, total: usize) -> Option<(usize, usize)> {
        if cursor >= total {
            return None;
        }
        Some((cursor, self.window_records.min(total - cursor)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windows_track_the_cursor_and_clamp_at_eof() {
        let ra = ReadAhead::new(10);
        assert_eq!(ra.next_window(0, 25), Some((0, 10)));
        assert_eq!(ra.next_window(10, 25), Some((10, 10)));
        assert_eq!(ra.next_window(20, 25), Some((20, 5)));
        assert_eq!(ra.next_window(25, 25), None);
    }

    #[test]
    #[should_panic(expected = "window_records must be positive")]
    fn zero_window_is_rejected() {
        let _ = ReadAhead::new(0);
    }
}
