//! The disk farm: one [`NodeDisk`] per processor of a shared-nothing
//! machine.
//!
//! Virtual processors run as OS threads, so the farm wraps each disk in a
//! mutex. There is no contention in a correct shared-nothing program — each
//! processor only ever locks its own disk — but the mutex keeps the API safe
//! if a test inspects disks from the outside after a run.
//!
//! Fault injection (see [`pdc_cgm::fault`]) acts on the charging side: a
//! machine with disk faults configured makes [`NodeDisk::read_range`] /
//! [`NodeDisk::try_read_range`] retry transient errors and slow down inside
//! degraded-bandwidth windows, charged through the owning processor's
//! virtual clock. The stored bytes themselves are never corrupted — the
//! simulator models *time*, not data loss.

use parking_lot::{Mutex, MutexGuard};

use crate::backend::BackendKind;
use crate::disk::NodeDisk;
use crate::engine::EngineConfig;

/// Per-processor local disks of a `p`-processor machine.
pub struct DiskFarm {
    nodes: Vec<Mutex<NodeDisk>>,
}

impl DiskFarm {
    /// A farm of `p` empty disks.
    pub fn new(p: usize, kind: BackendKind) -> Self {
        DiskFarm {
            nodes: (0..p).map(|r| Mutex::new(NodeDisk::new(r, kind.clone()))).collect(),
        }
    }

    /// In-memory farm (the default for tests and benches).
    pub fn in_memory(p: usize) -> Self {
        Self::new(p, BackendKind::InMemory)
    }

    /// A farm whose disks carry an asynchronous engine per `cfg` (buffer
    /// pool, write-back, prefetch — see [`crate::engine`]). With
    /// [`EngineConfig::disabled`] this is exactly [`DiskFarm::new`].
    pub fn with_engine(p: usize, kind: BackendKind, cfg: &EngineConfig) -> Self {
        DiskFarm {
            nodes: (0..p)
                .map(|r| Mutex::new(NodeDisk::with_engine(r, kind.clone(), cfg)))
                .collect(),
        }
    }

    /// Number of disks.
    pub fn nprocs(&self) -> usize {
        self.nodes.len()
    }

    /// Lock processor `rank`'s local disk.
    pub fn lock(&self, rank: usize) -> MutexGuard<'_, NodeDisk> {
        self.nodes[rank].lock()
    }

    /// Total bytes stored across all disks.
    pub fn used_bytes(&self) -> u64 {
        self.nodes.iter().map(|n| n.lock().used_bytes()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdc_cgm::Cluster;

    #[test]
    fn each_proc_uses_its_own_disk() {
        let p = 4;
        let farm = DiskFarm::in_memory(p);
        let cluster = Cluster::new(p);
        let out = cluster.run(|proc| {
            let mut disk = farm.lock(proc.rank());
            let f = disk.create::<u64>("mine");
            let data: Vec<u64> = (0..10).map(|i| (proc.rank() * 100 + i) as u64).collect();
            disk.append(proc, &f, &data);
            disk.num_records(&f)
        });
        assert!(out.results.iter().all(|&n| n == 10));
        for rank in 0..p {
            let disk = farm.lock(rank);
            assert_eq!(disk.rank(), rank);
            assert_eq!(disk.used_bytes(), 80);
        }
        assert_eq!(farm.used_bytes(), 4 * 80);
    }

    #[test]
    fn transient_read_errors_retry_and_charge_through_the_farm() {
        use pdc_cgm::{FaultPlan, MachineConfig};
        let p = 2;
        let farm = DiskFarm::in_memory(p);
        let mut faults = FaultPlan::with_seed(13);
        faults.disk.read_error_prob = 0.25;
        let cluster = Cluster::with_config(
            p,
            MachineConfig { faults, ..MachineConfig::default() },
        );
        let out = cluster.run(|proc| {
            let mut disk = farm.lock(proc.rank());
            let f = disk.create::<u64>("data");
            let data: Vec<u64> = (0..512).collect();
            disk.append(proc, &f, &data);
            let mut total = 0u64;
            for chunk in 0..32 {
                let recs = disk
                    .try_read_range(proc, &f, chunk * 16, 16)
                    .expect("bounded retries should recover");
                total += recs.iter().sum::<u64>();
            }
            (total, proc.counters.disk_retries)
        });
        let expected: u64 = (0..512).sum();
        assert!(out.results.iter().all(|&(t, _)| t == expected));
        let retries: u64 = out.results.iter().map(|&(_, r)| r).sum();
        assert!(retries > 0, "25% error rate over 64 reads must retry");
    }
}
