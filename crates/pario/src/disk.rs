//! One processor's local disk: a namespace of typed record files with
//! chunked, cost-charged access.
//!
//! Every read or write request charges the owning processor's virtual clock
//! with `access_latency + bytes / bandwidth` (see [`pdc_cgm::DiskParams`]),
//! so algorithms that issue many small requests pay for it — exactly the
//! effect the paper's chunked out-of-core design avoids.

use std::collections::HashMap;
use std::marker::PhantomData;

use pdc_cgm::Proc;

use crate::backend::{Backend, BackendKind};
use crate::engine::{EngineConfig, IoEngine};
use crate::prefetch::ReadAhead;
use crate::rec::{decode_batch, encode_batch, Rec};

/// Typed handle to a file on some [`NodeDisk`]. Cheap to clone; the data
/// lives on the disk, not in the handle.
pub struct TypedFile<R> {
    name: String,
    _marker: PhantomData<fn() -> R>,
}

impl<R> Clone for TypedFile<R> {
    fn clone(&self) -> Self {
        TypedFile {
            name: self.name.clone(),
            _marker: PhantomData,
        }
    }
}

impl<R> std::fmt::Debug for TypedFile<R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "TypedFile({})", self.name)
    }
}

impl<R> TypedFile<R> {
    /// The file's name on its disk.
    pub fn name(&self) -> &str {
        &self.name
    }
}

struct FileEntry {
    backend: Box<dyn Backend>,
    rec_bytes: usize,
    records: usize,
    /// Engine page-cache key: survives renames, never reused, so stale
    /// pages cannot alias a recreated file.
    id: u64,
}

/// The local disk of one virtual processor.
pub struct NodeDisk {
    rank: usize,
    kind: BackendKind,
    files: HashMap<String, FileEntry>,
    /// Asynchronous disk engine (buffer pool + device timeline); `None`
    /// routes every request through the legacy synchronous path.
    engine: Option<IoEngine>,
    next_file_id: u64,
    /// Reusable read buffer so chunked scans do not allocate per chunk.
    scratch: Vec<u8>,
}

impl NodeDisk {
    /// Empty disk for processor `rank` with physical storage `kind`, using
    /// the legacy synchronous I/O path.
    pub fn new(rank: usize, kind: BackendKind) -> Self {
        Self::with_engine(rank, kind, &EngineConfig::disabled())
    }

    /// Empty disk with an asynchronous engine per `cfg`. A disabled config
    /// attaches no engine at all, leaving the synchronous path bit-identical
    /// to [`NodeDisk::new`].
    pub fn with_engine(rank: usize, kind: BackendKind, cfg: &EngineConfig) -> Self {
        NodeDisk {
            rank,
            kind,
            files: HashMap::new(),
            engine: cfg.is_enabled().then(|| IoEngine::new(cfg)),
            next_file_id: 0,
            scratch: Vec::new(),
        }
    }

    /// Whether an asynchronous engine is attached.
    pub fn has_engine(&self) -> bool {
        self.engine.is_some()
    }

    /// Owning processor's rank.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Create (or truncate) a typed file.
    pub fn create<R: Rec>(&mut self, name: &str) -> TypedFile<R> {
        let backend = self.kind.open(self.rank, name);
        let id = self.next_file_id;
        self.next_file_id += 1;
        let replaced = self.files.insert(
            name.to_string(),
            FileEntry {
                backend,
                rec_bytes: R::ENCODED_BYTES,
                records: 0,
                id,
            },
        );
        if let Some(engine) = &mut self.engine {
            if let Some(old) = &replaced {
                engine.invalidate_file(old.id);
            }
            engine.note_file_len(id, 0);
        }
        TypedFile {
            name: name.to_string(),
            _marker: PhantomData,
        }
    }

    /// Re-open an existing file with its recorded type size checked.
    pub fn open<R: Rec>(&self, name: &str) -> TypedFile<R> {
        let entry = self
            .files
            .get(name)
            .unwrap_or_else(|| panic!("no file named {name:?} on disk of rank {}", self.rank));
        assert_eq!(
            entry.rec_bytes,
            R::ENCODED_BYTES,
            "type mismatch opening {name:?}"
        );
        TypedFile {
            name: name.to_string(),
            _marker: PhantomData,
        }
    }

    /// Does a file with this name exist?
    pub fn exists(&self, name: &str) -> bool {
        self.files.contains_key(name)
    }

    /// Names of all files on this disk (unsorted).
    pub fn file_names(&self) -> Vec<String> {
        self.files.keys().cloned().collect()
    }

    /// Delete a file, reclaiming its space. Cached pages are invalidated;
    /// dirty pages of a deleted scratch file never pay write-back.
    pub fn delete(&mut self, name: &str) {
        if let Some(entry) = self.files.remove(name) {
            if let Some(engine) = &mut self.engine {
                engine.invalidate_file(entry.id);
            }
        }
    }

    /// Rename a file (destination is overwritten if present). The physical
    /// backend moves its storage too, so a file later created under the old
    /// name cannot collide with this one's bytes.
    pub fn rename(&mut self, old: &str, new: &str) {
        let mut entry = self
            .files
            .remove(old)
            .unwrap_or_else(|| panic!("rename: no file named {old:?}"));
        // Drop any displaced destination first: its backend cleans up its
        // own storage, which must not race with the file we move in.
        if let Some(displaced) = self.files.remove(new) {
            if let Some(engine) = &mut self.engine {
                engine.invalidate_file(displaced.id);
            }
        }
        entry.backend.rename(new);
        self.files.insert(new.to_string(), entry);
    }

    /// Number of records currently in `file`.
    pub fn num_records<R: Rec>(&self, file: &TypedFile<R>) -> usize {
        self.entry(file).records
    }

    /// Total bytes across all files (space accounting).
    pub fn used_bytes(&self) -> u64 {
        self.files.values().map(|e| e.backend.len()).sum()
    }

    fn entry<R: Rec>(&self, file: &TypedFile<R>) -> &FileEntry {
        self.files
            .get(&file.name)
            .unwrap_or_else(|| panic!("file {:?} missing (deleted?)", file.name))
    }

    fn entry_mut<R: Rec>(&mut self, file: &TypedFile<R>) -> &mut FileEntry {
        self.files
            .get_mut(&file.name)
            .unwrap_or_else(|| panic!("file {:?} missing (deleted?)", file.name))
    }

    /// Append a batch of records as one write request, charging `proc`.
    /// With an engine the pages go dirty in the buffer pool (write-back:
    /// the device is charged asynchronously on eviction or sync); without
    /// one the write is charged synchronously.
    pub fn append<R: Rec>(&mut self, proc: &mut Proc, file: &TypedFile<R>, records: &[R]) {
        if records.is_empty() {
            return;
        }
        let bytes = encode_batch(records);
        let entry = self
            .files
            .get_mut(&file.name)
            .unwrap_or_else(|| panic!("file {:?} missing (deleted?)", file.name));
        let old_len = entry.backend.len();
        match &mut self.engine {
            Some(engine) => engine.append(proc, entry.id, old_len, bytes.len()),
            None => {
                let ws = old_len as usize + bytes.len();
                proc.disk_write_ws(bytes.len(), ws);
            }
        }
        entry.backend.append(&bytes);
        entry.records += records.len();
    }

    /// Read `count` records starting at index `start` as one read request,
    /// charging `proc`. Panics if fault injection makes the read fail
    /// permanently — use [`NodeDisk::try_read_range`] in fault-aware code.
    pub fn read_range<R: Rec>(
        &mut self,
        proc: &mut Proc,
        file: &TypedFile<R>,
        start: usize,
        count: usize,
    ) -> Vec<R> {
        self.try_read_range(proc, file, start, count)
            .unwrap_or_else(|e| {
                panic!("pario: rank {} reading {:?}: {e}", self.rank, file.name)
            })
    }

    /// Fault-aware [`NodeDisk::read_range`]: transient read errors from the
    /// machine's [`pdc_cgm::FaultPlan`] are retried (each retry charging
    /// the virtual clock); when all attempts fail the error surfaces
    /// instead of panicking. With an inert fault plan this is exactly
    /// `read_range` and always succeeds.
    pub fn try_read_range<R: Rec>(
        &mut self,
        proc: &mut Proc,
        file: &TypedFile<R>,
        start: usize,
        count: usize,
    ) -> Result<Vec<R>, pdc_cgm::FaultError> {
        if count == 0 {
            return Ok(Vec::new());
        }
        let entry = self
            .files
            .get_mut(&file.name)
            .unwrap_or_else(|| panic!("file {:?} missing (deleted?)", file.name));
        assert!(
            start + count <= entry.records,
            "read_range [{start}, {}) past end ({} records) of {:?}",
            start + count,
            entry.records,
            file.name
        );
        let nbytes = count * R::ENCODED_BYTES;
        let offset = (start * R::ENCODED_BYTES) as u64;
        match &mut self.engine {
            Some(engine) => engine.read(proc, entry.id, offset, nbytes)?,
            None => proc.try_disk_read_ws(nbytes, entry.records * R::ENCODED_BYTES)?,
        }
        self.scratch.resize(nbytes, 0);
        entry.backend.read_into(offset, &mut self.scratch[..nbytes]);
        Ok(decode_batch(&self.scratch[..nbytes]))
    }

    /// Read the whole file in one request (callers use this only for files
    /// known to fit in memory, e.g. the paper's "small nodes").
    pub fn read_all<R: Rec>(&mut self, proc: &mut Proc, file: &TypedFile<R>) -> Vec<R> {
        let n = self.num_records(file);
        proc.in_span("pario.read_all", &[("records", n as i64)], |proc| {
            self.read_range(proc, file, 0, n)
        })
    }

    /// Append records **without charging any virtual time** — for loading
    /// initial data or inspecting results outside a cluster run (the paper
    /// assumes the training data is already resident on the disks).
    pub fn append_uncharged<R: Rec>(&mut self, file: &TypedFile<R>, records: &[R]) {
        if records.is_empty() {
            return;
        }
        let bytes = encode_batch(records);
        let entry = self
            .files
            .get_mut(&file.name)
            .unwrap_or_else(|| panic!("file {:?} missing (deleted?)", file.name));
        entry.backend.append(&bytes);
        entry.records += records.len();
        if let Some(engine) = &mut self.engine {
            // Keep the engine's length map accurate; pre-loaded data is not
            // dirty (it was never "written" on the virtual machine).
            engine.note_file_len(entry.id, entry.backend.len());
        }
    }

    /// Read the whole file **without charging any virtual time** — for
    /// verification outside a cluster run.
    pub fn read_all_uncharged<R: Rec>(&mut self, file: &TypedFile<R>) -> Vec<R> {
        let n = self.num_records(file);
        if n == 0 {
            return Vec::new();
        }
        let entry = self.entry_mut(file);
        let bytes = entry.backend.read(0, n * R::ENCODED_BYTES);
        decode_batch(&bytes)
    }

    /// Chunked sequential reader over `file` with a bounded per-chunk record
    /// count (the out-of-core memory budget). When the disk has a
    /// prefetching engine the reader requests each next chunk speculatively
    /// while the caller processes the current one.
    pub fn reader<R: Rec>(&self, file: &TypedFile<R>, chunk_records: usize) -> ChunkedReader<R> {
        assert!(chunk_records > 0, "chunk_records must be positive");
        ChunkedReader {
            file: file.clone(),
            cursor: 0,
            chunk_records,
            ahead: ReadAhead::new(chunk_records),
        }
    }

    /// Hint: records `[start, start + count)` of `file` will be read soon.
    /// Issues speculative device reads for their missing pages; a no-op
    /// without a prefetching engine.
    pub fn prefetch_range<R: Rec>(
        &mut self,
        proc: &mut Proc,
        file: &TypedFile<R>,
        start: usize,
        count: usize,
    ) {
        let Some(engine) = &mut self.engine else { return };
        if !engine.prefetch_enabled() || count == 0 {
            return;
        }
        let Some(entry) = self.files.get(&file.name) else { return };
        let offset = (start * R::ENCODED_BYTES) as u64;
        engine.prefetch(proc, entry.id, offset, count * R::ENCODED_BYTES);
    }

    /// Hint: the whole file named `name` will be read soon (task lookahead
    /// from the scheduler). Untyped so schedulers need not know record
    /// types; capped by the engine at half the pool budget. A no-op when
    /// the file does not exist or there is no prefetching engine.
    pub fn prefetch_file_by_name(&mut self, proc: &mut Proc, name: &str) {
        let Some(engine) = &mut self.engine else { return };
        if !engine.prefetch_enabled() {
            return;
        }
        let Some(entry) = self.files.get(name) else { return };
        let len = entry.backend.len();
        if len > 0 {
            engine.prefetch(proc, entry.id, 0, len as usize);
        }
    }

    /// Flush dirty pages and drain the device timeline (see
    /// [`crate::engine::IoEngine::sync`]). A no-op — including no span —
    /// without an engine, preserving the disabled path's bit-identity.
    pub fn sync_engine(&mut self, proc: &mut Proc) {
        if let Some(engine) = &mut self.engine {
            let token = proc.span("pario.cache.sync", &[]);
            engine.sync(proc);
            proc.span_end(token);
        }
    }
}

/// Streaming reader: yields chunks of at most `chunk_records` records, each
/// as one charged disk request.
pub struct ChunkedReader<R> {
    file: TypedFile<R>,
    cursor: usize,
    chunk_records: usize,
    ahead: ReadAhead,
}

impl<R: Rec> ChunkedReader<R> {
    /// Read the next chunk, or `None` at end of file. With a prefetching
    /// engine the following chunk is requested speculatively before this
    /// one is returned, overlapping its device time with the caller's
    /// processing of the current chunk.
    pub fn next_chunk(&mut self, disk: &mut NodeDisk, proc: &mut Proc) -> Option<Vec<R>> {
        let total = disk.num_records(&self.file);
        if self.cursor >= total {
            return None;
        }
        let count = self.chunk_records.min(total - self.cursor);
        let out = disk.read_range(proc, &self.file, self.cursor, count);
        self.cursor += count;
        if let Some((start, ahead)) = self.ahead.next_window(self.cursor, total) {
            disk.prefetch_range(proc, &self.file, start, ahead);
        }
        Some(out)
    }

    /// Records read so far.
    pub fn position(&self) -> usize {
        self.cursor
    }

    /// Warm the stream: issue a speculative read for the *first* chunk
    /// before the consuming loop starts, so even the opening request rides
    /// the device asynchronously (steady-state streaming, e.g. a serving
    /// loop, otherwise pays one cold demand read up front). A no-op — and
    /// bit-identical — without a prefetching engine.
    pub fn prime(&mut self, disk: &mut NodeDisk, proc: &mut Proc) {
        let total = disk.num_records(&self.file);
        let count = self.chunk_records.min(total.saturating_sub(self.cursor));
        if count > 0 {
            disk.prefetch_range(proc, &self.file, self.cursor, count);
        }
    }
}

/// Buffered writer: batches appended records into `chunk_records`-sized
/// write requests. Call [`BufferedWriter::flush`] before dropping.
pub struct BufferedWriter<R> {
    file: TypedFile<R>,
    buf: Vec<R>,
    chunk_records: usize,
}

impl<R: Rec> BufferedWriter<R> {
    /// New writer appending to `file`.
    pub fn new(file: TypedFile<R>, chunk_records: usize) -> Self {
        assert!(chunk_records > 0, "chunk_records must be positive");
        BufferedWriter {
            file,
            buf: Vec::with_capacity(chunk_records),
            chunk_records,
        }
    }

    /// Buffer one record, flushing if the buffer is full.
    pub fn push(&mut self, disk: &mut NodeDisk, proc: &mut Proc, record: R) {
        self.buf.push(record);
        if self.buf.len() >= self.chunk_records {
            self.flush(disk, proc);
        }
    }

    /// Write out any buffered records.
    pub fn flush(&mut self, disk: &mut NodeDisk, proc: &mut Proc) {
        if !self.buf.is_empty() {
            disk.append(proc, &self.file, &self.buf);
            self.buf.clear();
        }
    }

    /// Records currently buffered (not yet on disk).
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }
}
