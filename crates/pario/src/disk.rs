//! One processor's local disk: a namespace of typed record files with
//! chunked, cost-charged access.
//!
//! Every read or write request charges the owning processor's virtual clock
//! with `access_latency + bytes / bandwidth` (see [`pdc_cgm::DiskParams`]),
//! so algorithms that issue many small requests pay for it — exactly the
//! effect the paper's chunked out-of-core design avoids.

use std::collections::HashMap;
use std::marker::PhantomData;

use pdc_cgm::Proc;

use crate::backend::{Backend, BackendKind};
use crate::rec::{decode_batch, encode_batch, Rec};

/// Typed handle to a file on some [`NodeDisk`]. Cheap to clone; the data
/// lives on the disk, not in the handle.
pub struct TypedFile<R> {
    name: String,
    _marker: PhantomData<fn() -> R>,
}

impl<R> Clone for TypedFile<R> {
    fn clone(&self) -> Self {
        TypedFile {
            name: self.name.clone(),
            _marker: PhantomData,
        }
    }
}

impl<R> std::fmt::Debug for TypedFile<R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "TypedFile({})", self.name)
    }
}

impl<R> TypedFile<R> {
    /// The file's name on its disk.
    pub fn name(&self) -> &str {
        &self.name
    }
}

struct FileEntry {
    backend: Box<dyn Backend>,
    rec_bytes: usize,
    records: usize,
}

/// The local disk of one virtual processor.
pub struct NodeDisk {
    rank: usize,
    kind: BackendKind,
    files: HashMap<String, FileEntry>,
}

impl NodeDisk {
    /// Empty disk for processor `rank` with physical storage `kind`.
    pub fn new(rank: usize, kind: BackendKind) -> Self {
        NodeDisk {
            rank,
            kind,
            files: HashMap::new(),
        }
    }

    /// Owning processor's rank.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Create (or truncate) a typed file.
    pub fn create<R: Rec>(&mut self, name: &str) -> TypedFile<R> {
        let backend = self.kind.open(self.rank, name);
        self.files.insert(
            name.to_string(),
            FileEntry {
                backend,
                rec_bytes: R::ENCODED_BYTES,
                records: 0,
            },
        );
        TypedFile {
            name: name.to_string(),
            _marker: PhantomData,
        }
    }

    /// Re-open an existing file with its recorded type size checked.
    pub fn open<R: Rec>(&self, name: &str) -> TypedFile<R> {
        let entry = self
            .files
            .get(name)
            .unwrap_or_else(|| panic!("no file named {name:?} on disk of rank {}", self.rank));
        assert_eq!(
            entry.rec_bytes,
            R::ENCODED_BYTES,
            "type mismatch opening {name:?}"
        );
        TypedFile {
            name: name.to_string(),
            _marker: PhantomData,
        }
    }

    /// Does a file with this name exist?
    pub fn exists(&self, name: &str) -> bool {
        self.files.contains_key(name)
    }

    /// Names of all files on this disk (unsorted).
    pub fn file_names(&self) -> Vec<String> {
        self.files.keys().cloned().collect()
    }

    /// Delete a file, reclaiming its space.
    pub fn delete(&mut self, name: &str) {
        self.files.remove(name);
    }

    /// Rename a file (destination is overwritten if present).
    pub fn rename(&mut self, old: &str, new: &str) {
        let entry = self
            .files
            .remove(old)
            .unwrap_or_else(|| panic!("rename: no file named {old:?}"));
        self.files.insert(new.to_string(), entry);
    }

    /// Number of records currently in `file`.
    pub fn num_records<R: Rec>(&self, file: &TypedFile<R>) -> usize {
        self.entry(file).records
    }

    /// Total bytes across all files (space accounting).
    pub fn used_bytes(&self) -> u64 {
        self.files.values().map(|e| e.backend.len()).sum()
    }

    fn entry<R: Rec>(&self, file: &TypedFile<R>) -> &FileEntry {
        self.files
            .get(&file.name)
            .unwrap_or_else(|| panic!("file {:?} missing (deleted?)", file.name))
    }

    fn entry_mut<R: Rec>(&mut self, file: &TypedFile<R>) -> &mut FileEntry {
        self.files
            .get_mut(&file.name)
            .unwrap_or_else(|| panic!("file {:?} missing (deleted?)", file.name))
    }

    /// Append a batch of records as one write request, charging `proc`.
    pub fn append<R: Rec>(&mut self, proc: &mut Proc, file: &TypedFile<R>, records: &[R]) {
        if records.is_empty() {
            return;
        }
        let bytes = encode_batch(records);
        let entry = self.entry_mut(file);
        let ws = entry.backend.len() as usize + bytes.len();
        proc.disk_write_ws(bytes.len(), ws);
        entry.backend.append(&bytes);
        entry.records += records.len();
    }

    /// Read `count` records starting at index `start` as one read request,
    /// charging `proc`. Panics if fault injection makes the read fail
    /// permanently — use [`NodeDisk::try_read_range`] in fault-aware code.
    pub fn read_range<R: Rec>(
        &mut self,
        proc: &mut Proc,
        file: &TypedFile<R>,
        start: usize,
        count: usize,
    ) -> Vec<R> {
        self.try_read_range(proc, file, start, count)
            .unwrap_or_else(|e| {
                panic!("pario: rank {} reading {:?}: {e}", self.rank, file.name)
            })
    }

    /// Fault-aware [`NodeDisk::read_range`]: transient read errors from the
    /// machine's [`pdc_cgm::FaultPlan`] are retried (each retry charging
    /// the virtual clock); when all attempts fail the error surfaces
    /// instead of panicking. With an inert fault plan this is exactly
    /// `read_range` and always succeeds.
    pub fn try_read_range<R: Rec>(
        &mut self,
        proc: &mut Proc,
        file: &TypedFile<R>,
        start: usize,
        count: usize,
    ) -> Result<Vec<R>, pdc_cgm::FaultError> {
        if count == 0 {
            return Ok(Vec::new());
        }
        let entry = self.entry_mut(file);
        assert!(
            start + count <= entry.records,
            "read_range [{start}, {}) past end ({} records) of {:?}",
            start + count,
            entry.records,
            file.name
        );
        let nbytes = count * R::ENCODED_BYTES;
        proc.try_disk_read_ws(nbytes, entry.records * R::ENCODED_BYTES)?;
        let bytes = entry
            .backend
            .read((start * R::ENCODED_BYTES) as u64, nbytes);
        Ok(decode_batch(&bytes))
    }

    /// Read the whole file in one request (callers use this only for files
    /// known to fit in memory, e.g. the paper's "small nodes").
    pub fn read_all<R: Rec>(&mut self, proc: &mut Proc, file: &TypedFile<R>) -> Vec<R> {
        let n = self.num_records(file);
        proc.in_span("pario.read_all", &[("records", n as i64)], |proc| {
            self.read_range(proc, file, 0, n)
        })
    }

    /// Append records **without charging any virtual time** — for loading
    /// initial data or inspecting results outside a cluster run (the paper
    /// assumes the training data is already resident on the disks).
    pub fn append_uncharged<R: Rec>(&mut self, file: &TypedFile<R>, records: &[R]) {
        if records.is_empty() {
            return;
        }
        let bytes = encode_batch(records);
        let entry = self.entry_mut(file);
        entry.backend.append(&bytes);
        entry.records += records.len();
    }

    /// Read the whole file **without charging any virtual time** — for
    /// verification outside a cluster run.
    pub fn read_all_uncharged<R: Rec>(&mut self, file: &TypedFile<R>) -> Vec<R> {
        let n = self.num_records(file);
        if n == 0 {
            return Vec::new();
        }
        let entry = self.entry_mut(file);
        let bytes = entry.backend.read(0, n * R::ENCODED_BYTES);
        decode_batch(&bytes)
    }

    /// Chunked sequential reader over `file` with a bounded per-chunk record
    /// count (the out-of-core memory budget).
    pub fn reader<R: Rec>(&self, file: &TypedFile<R>, chunk_records: usize) -> ChunkedReader<R> {
        assert!(chunk_records > 0, "chunk_records must be positive");
        ChunkedReader {
            file: file.clone(),
            cursor: 0,
            chunk_records,
        }
    }
}

/// Streaming reader: yields chunks of at most `chunk_records` records, each
/// as one charged disk request.
pub struct ChunkedReader<R> {
    file: TypedFile<R>,
    cursor: usize,
    chunk_records: usize,
}

impl<R: Rec> ChunkedReader<R> {
    /// Read the next chunk, or `None` at end of file.
    pub fn next_chunk(&mut self, disk: &mut NodeDisk, proc: &mut Proc) -> Option<Vec<R>> {
        let total = disk.num_records(&self.file);
        if self.cursor >= total {
            return None;
        }
        let count = self.chunk_records.min(total - self.cursor);
        let out = disk.read_range(proc, &self.file, self.cursor, count);
        self.cursor += count;
        Some(out)
    }

    /// Records read so far.
    pub fn position(&self) -> usize {
        self.cursor
    }
}

/// Buffered writer: batches appended records into `chunk_records`-sized
/// write requests. Call [`BufferedWriter::flush`] before dropping.
pub struct BufferedWriter<R> {
    file: TypedFile<R>,
    buf: Vec<R>,
    chunk_records: usize,
}

impl<R: Rec> BufferedWriter<R> {
    /// New writer appending to `file`.
    pub fn new(file: TypedFile<R>, chunk_records: usize) -> Self {
        assert!(chunk_records > 0, "chunk_records must be positive");
        BufferedWriter {
            file,
            buf: Vec::with_capacity(chunk_records),
            chunk_records,
        }
    }

    /// Buffer one record, flushing if the buffer is full.
    pub fn push(&mut self, disk: &mut NodeDisk, proc: &mut Proc, record: R) {
        self.buf.push(record);
        if self.buf.len() >= self.chunk_records {
            self.flush(disk, proc);
        }
    }

    /// Write out any buffered records.
    pub fn flush(&mut self, disk: &mut NodeDisk, proc: &mut Proc) {
        if !self.buf.is_empty() {
            disk.append(proc, &self.file, &self.buf);
            self.buf.clear();
        }
    }

    /// Records currently buffered (not yet on disk).
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }
}
