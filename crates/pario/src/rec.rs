//! Fixed-size record trait.
//!
//! Out-of-core files store records back to back; a fixed encoded size makes
//! every chunk boundary a record boundary and lets readers seek by index,
//! exactly like the attribute/record files of the paper's implementation.

use pdc_cgm::Wire;

/// A record with a fixed wire size. `ENCODED_BYTES` must equal the length of
/// `Wire::to_bytes()` for every value of the type (checked in debug builds
/// by the file layer).
pub trait Rec: Wire + Clone + Send + 'static {
    /// Exact encoded size in bytes of every value of this type.
    const ENCODED_BYTES: usize;
}

impl Rec for u8 {
    const ENCODED_BYTES: usize = 1;
}
impl Rec for u32 {
    const ENCODED_BYTES: usize = 4;
}
impl Rec for u64 {
    const ENCODED_BYTES: usize = 8;
}
impl Rec for i64 {
    const ENCODED_BYTES: usize = 8;
}
impl Rec for f64 {
    const ENCODED_BYTES: usize = 8;
}
impl<A: Rec, B: Rec> Rec for (A, B) {
    const ENCODED_BYTES: usize = A::ENCODED_BYTES + B::ENCODED_BYTES;
}
impl<A: Rec, B: Rec, C: Rec> Rec for (A, B, C) {
    const ENCODED_BYTES: usize = A::ENCODED_BYTES + B::ENCODED_BYTES + C::ENCODED_BYTES;
}

/// Encode a batch of records into one contiguous buffer.
pub fn encode_batch<R: Rec>(records: &[R]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(records.len() * R::ENCODED_BYTES);
    for r in records {
        let before = buf.len();
        r.encode(&mut buf);
        debug_assert_eq!(
            buf.len() - before,
            R::ENCODED_BYTES,
            "record type violated its fixed ENCODED_BYTES contract"
        );
    }
    buf
}

/// Decode a contiguous buffer of back-to-back records.
pub fn decode_batch<R: Rec>(mut bytes: &[u8]) -> Vec<R> {
    assert_eq!(
        bytes.len() % R::ENCODED_BYTES,
        0,
        "buffer is not a whole number of records"
    );
    let n = bytes.len() / R::ENCODED_BYTES;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(R::decode(&mut bytes).expect("fixed-size record decode"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_roundtrip() {
        let recs: Vec<(u64, f64)> = (0..100).map(|i| (i, i as f64 * 0.5)).collect();
        let bytes = encode_batch(&recs);
        assert_eq!(bytes.len(), recs.len() * <(u64, f64)>::ENCODED_BYTES);
        let back: Vec<(u64, f64)> = decode_batch(&bytes);
        assert_eq!(back, recs);
    }

    #[test]
    fn empty_batch() {
        let bytes = encode_batch::<u32>(&[]);
        assert!(bytes.is_empty());
        assert!(decode_batch::<u32>(&bytes).is_empty());
    }

    #[test]
    #[should_panic(expected = "whole number of records")]
    fn ragged_buffer_panics() {
        decode_batch::<u32>(&[0, 1, 2]);
    }
}
