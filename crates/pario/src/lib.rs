//! # pdc-pario — out-of-core parallel I/O subsystem
//!
//! The paper assumes a shared-nothing machine where "each processor has its
//! own disk which can be controlled independently" and where out-of-core
//! data is streamed through a bounded memory buffer. This crate provides
//! that substrate on top of the simulated machine of [`pdc_cgm`]:
//!
//! * [`DiskFarm`] — one [`NodeDisk`] per processor;
//! * [`NodeDisk`] — a namespace of fixed-size-record files
//!   ([`TypedFile`]) with chunked, *cost-charged* reads and writes;
//! * [`ChunkedReader`] / [`BufferedWriter`] — streaming access within a
//!   memory budget (the paper's "memory limit");
//! * [`fn@redistribute`] — compute-dependent parallel I/O: read → personalized
//!   all-to-all → write, the operation that moves a subtask's data to its
//!   assigned processor group;
//! * the asynchronous disk engine ([`engine`], [`cache`], [`prefetch`]) —
//!   a per-rank buffer pool with pluggable replacement, write-back, and
//!   compute-independent prefetch on the machine's I/O device timeline
//!   (off by default; [`EngineConfig::disabled`] keeps the synchronous
//!   path bit-identical);
//! * two physical backends — RAM-backed (default) and real files — that
//!   charge identical virtual I/O costs.

//!
//! ```
//! use pdc_cgm::Cluster;
//! use pdc_pario::DiskFarm;
//!
//! let farm = DiskFarm::in_memory(2);
//! let out = Cluster::new(2).run(|proc| {
//!     let mut disk = farm.lock(proc.rank());
//!     let f = disk.create::<u64>("data");
//!     disk.append(proc, &f, &[1, 2, 3]);
//!     disk.read_all(proc, &f).len()
//! });
//! assert_eq!(out.results, vec![3, 3]);
//! assert!(out.makespan() > 0.0); // the writes and reads were charged
//! ```

#![warn(missing_docs)]

pub mod backend;
pub mod cache;
pub mod disk;
pub mod engine;
pub mod farm;
pub mod prefetch;
pub mod rec;
pub mod redistribute;

pub use backend::{Backend, BackendKind, InMemory, OnDisk};
pub use cache::{BufferPool, ReplacementPolicy};
pub use disk::{BufferedWriter, ChunkedReader, NodeDisk, TypedFile};
pub use engine::{EngineConfig, IoEngine};
pub use farm::DiskFarm;
pub use prefetch::ReadAhead;
pub use rec::{decode_batch, encode_batch, Rec};
pub use redistribute::redistribute;
