//! Data redistribution: the heart of *compute-dependent parallel I/O*.
//!
//! When a subtask is assigned to a processor (sub)group, its disk-resident
//! data must move there: read at the sources, personalized all-to-all
//! communication, write at the destinations. The paper stresses that this is
//! an expensive operation — here each of the three legs (read, transfer,
//! write) is charged to the participating processors' virtual clocks.

use pdc_cgm::{OpKind, Proc};

use crate::disk::TypedFile;
use crate::farm::DiskFarm;
use crate::rec::Rec;

/// SPMD chunked redistribution: every processor streams its local `src`
/// file in chunks of `chunk_records`, routes each record with `route`
/// (destination rank), exchanges the buckets with a personalized
/// all-to-all, and appends what it receives to its local `dst` file.
///
/// All processors must call this collectively. The number of communication
/// rounds is the global maximum chunk count, so processors with shorter
/// files participate with empty buckets (bounded memory on every rank).
///
/// Returns the number of records this processor received.
pub fn redistribute<R: Rec, F>(
    proc: &mut Proc,
    farm: &DiskFarm,
    src: &TypedFile<R>,
    dst: &TypedFile<R>,
    chunk_records: usize,
    route: F,
) -> usize
where
    F: Fn(&R) -> usize,
{
    assert!(chunk_records > 0, "chunk_records must be positive");
    let span = proc.span(
        "pario.redistribute",
        &[("chunk_records", chunk_records as i64)],
    );
    let p = proc.nprocs();
    let local_records = farm.lock(proc.rank()).num_records(src);
    let local_rounds = local_records.div_ceil(chunk_records);
    let rounds = proc.allreduce(local_rounds as u64, u64::max) as usize;

    let mut received_total = 0usize;
    let mut cursor = 0usize;
    for _ in 0..rounds {
        // Read the next chunk of the local source file (possibly empty).
        let chunk: Vec<R> = {
            let mut disk = farm.lock(proc.rank());
            let remaining = local_records - cursor;
            let count = chunk_records.min(remaining);
            let recs = if count > 0 {
                disk.read_range(proc, src, cursor, count)
            } else {
                Vec::new()
            };
            cursor += count;
            recs
        };
        // Route records into per-destination buckets.
        let mut buckets: Vec<Vec<R>> = (0..p).map(|_| Vec::new()).collect();
        proc.charge(OpKind::SplitTest, chunk.len() as u64);
        for r in chunk {
            let dst_rank = route(&r);
            assert!(dst_rank < p, "route() returned rank {dst_rank} of {p}");
            buckets[dst_rank].push(r);
        }
        // Exchange and write.
        let incoming = proc.all_to_all(buckets);
        let mut disk = farm.lock(proc.rank());
        for batch in incoming {
            received_total += batch.len();
            disk.append(proc, dst, &batch);
        }
    }
    proc.span_end(span);
    received_total
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdc_cgm::Cluster;

    /// Redistribute by value modulo p and verify every record lands on the
    /// right disk with nothing lost.
    #[test]
    fn modulo_routing_conserves_and_places_records() {
        let p = 4;
        let farm = DiskFarm::in_memory(p);
        let cluster = Cluster::new(p);
        let per_proc = 53; // deliberately not a multiple of the chunk size
        let out = cluster.run(|proc| {
            let (src, dst) = {
                let mut disk = farm.lock(proc.rank());
                let src = disk.create::<u64>("src");
                let dst = disk.create::<u64>("dst");
                let data: Vec<u64> = (0..per_proc)
                    .map(|i| (proc.rank() * 1000 + i) as u64)
                    .collect();
                disk.append(proc, &src, &data);
                (src, dst)
            };
            let got = redistribute(proc, &farm, &src, &dst, 10, |r| (*r % 4) as usize);
            let mut disk = farm.lock(proc.rank());
            let all = disk.read_all(proc, &dst);
            assert_eq!(all.len(), got);
            all
        });
        let mut total = 0;
        for (rank, records) in out.results.iter().enumerate() {
            total += records.len();
            for r in records {
                assert_eq!((*r % 4) as usize, rank, "record {r} misplaced");
            }
        }
        assert_eq!(total, p * per_proc, "records lost or duplicated");
    }

    /// Skewed sources: one processor holds everything; rounds are still
    /// globally agreed so no deadlock, and data spreads correctly.
    #[test]
    fn skewed_source_single_owner() {
        let p = 3;
        let farm = DiskFarm::in_memory(p);
        let cluster = Cluster::new(p);
        let out = cluster.run(|proc| {
            let (src, dst) = {
                let mut disk = farm.lock(proc.rank());
                let src = disk.create::<u64>("src");
                let dst = disk.create::<u64>("dst");
                if proc.rank() == 0 {
                    let data: Vec<u64> = (0..90).collect();
                    disk.append(proc, &src, &data);
                }
                (src, dst)
            };
            redistribute(proc, &farm, &src, &dst, 7, |r| (*r % 3) as usize)
        });
        assert_eq!(out.results, vec![30, 30, 30]);
    }

    /// Empty inputs on every rank complete immediately.
    #[test]
    fn empty_redistribution() {
        let p = 2;
        let farm = DiskFarm::in_memory(p);
        let cluster = Cluster::new(p);
        let out = cluster.run(|proc| {
            let (src, dst) = {
                let mut disk = farm.lock(proc.rank());
                (disk.create::<u64>("src"), disk.create::<u64>("dst"))
            };
            redistribute(proc, &farm, &src, &dst, 8, |_| 0)
        });
        assert_eq!(out.results, vec![0, 0]);
    }

    /// All records to a single destination (the paper's small-node
    /// assignment pattern).
    #[test]
    fn all_to_one_destination() {
        let p = 4;
        let farm = DiskFarm::in_memory(p);
        let cluster = Cluster::new(p);
        let out = cluster.run(|proc| {
            let (src, dst) = {
                let mut disk = farm.lock(proc.rank());
                let src = disk.create::<u64>("src");
                let dst = disk.create::<u64>("dst");
                let data: Vec<u64> = vec![proc.rank() as u64; 20];
                disk.append(proc, &src, &data);
                (src, dst)
            };
            redistribute(proc, &farm, &src, &dst, 6, |_| 2)
        });
        assert_eq!(out.results, vec![0, 0, 80, 0]);
    }
}
