//! Physical storage backends for a processor's local disk.
//!
//! Two backends share one trait: [`InMemory`] keeps bytes in RAM (fast, used
//! by tests and the figure harness — remember the *cost* of I/O is always
//! charged to the virtual clock regardless of backend), and [`OnDisk`]
//! stores real files under a temporary directory (used by the out-of-core
//! example to demonstrate genuinely disk-resident operation).

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::PathBuf;

/// Byte-level storage for one logical file.
pub trait Backend: Send {
    /// Append bytes at the end.
    fn append(&mut self, bytes: &[u8]);
    /// Read exactly `buf.len()` bytes starting at `offset` into `buf`.
    /// Panics if out of range (callers track logical lengths). This is the
    /// hot-path primitive: it reuses the caller's buffer instead of
    /// allocating a fresh `Vec` per chunk.
    fn read_into(&mut self, offset: u64, buf: &mut [u8]);
    /// Read `len` bytes starting at `offset`. Panics if out of range.
    fn read(&mut self, offset: u64, len: usize) -> Vec<u8> {
        let mut buf = vec![0u8; len];
        self.read_into(offset, &mut buf);
        buf
    }
    /// Current length in bytes.
    fn len(&self) -> u64;
    /// Whether the file is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Discard all contents.
    fn clear(&mut self);
    /// The logical file was renamed to `new_name`. Backends with a physical
    /// namespace (real files) move their storage; the in-memory backend has
    /// nothing to do.
    fn rename(&mut self, new_name: &str) {
        let _ = new_name;
    }
}

/// Heap-backed storage.
#[derive(Default)]
pub struct InMemory {
    data: Vec<u8>,
}

impl InMemory {
    /// New empty in-memory file.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Backend for InMemory {
    fn append(&mut self, bytes: &[u8]) {
        self.data.extend_from_slice(bytes);
    }

    fn read_into(&mut self, offset: u64, buf: &mut [u8]) {
        let start = offset as usize;
        let end = start
            .checked_add(buf.len())
            .expect("read range overflow");
        assert!(end <= self.data.len(), "read past end of in-memory file");
        buf.copy_from_slice(&self.data[start..end]);
    }

    fn len(&self) -> u64 {
        self.data.len() as u64
    }

    fn clear(&mut self) {
        self.data.clear();
    }
}

/// Replace path-hostile characters so any logical file name maps to one
/// file name inside the rank's scratch directory.
fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_alphanumeric() || c == '-' || c == '_' { c } else { '_' })
        .collect()
}

/// Real-file storage under a caller-provided directory.
pub struct OnDisk {
    path: PathBuf,
    file: File,
    len: u64,
}

impl OnDisk {
    /// Create (truncating) a real file at `path`.
    pub fn create(path: PathBuf) -> std::io::Result<Self> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        let file = OpenOptions::new()
            .create(true)
            .truncate(true)
            .read(true)
            .write(true)
            .open(&path)?;
        Ok(OnDisk { path, file, len: 0 })
    }

    /// Path of the underlying file.
    pub fn path(&self) -> &PathBuf {
        &self.path
    }
}

impl Backend for OnDisk {
    fn append(&mut self, bytes: &[u8]) {
        self.file
            .seek(SeekFrom::End(0))
            .and_then(|_| self.file.write_all(bytes))
            .expect("on-disk append failed");
        self.len += bytes.len() as u64;
    }

    fn read_into(&mut self, offset: u64, buf: &mut [u8]) {
        let end = offset
            .checked_add(buf.len() as u64)
            .expect("read range overflow");
        assert!(end <= self.len, "read past end of file");
        self.file
            .seek(SeekFrom::Start(offset))
            .and_then(|_| self.file.read_exact(buf))
            .expect("on-disk read failed");
    }

    fn len(&self) -> u64 {
        self.len
    }

    fn clear(&mut self) {
        self.file.set_len(0).expect("truncate failed");
        self.len = 0;
    }

    fn rename(&mut self, new_name: &str) {
        // Keep the physical file in step with the logical namespace so a
        // later file created under the old name cannot collide with (or
        // truncate) this one's storage.
        let new_path = match self.path.parent() {
            Some(parent) => parent.join(sanitize(new_name)),
            None => PathBuf::from(sanitize(new_name)),
        };
        if new_path == self.path {
            return;
        }
        std::fs::rename(&self.path, &new_path).expect("on-disk rename failed");
        self.path = new_path;
    }
}

impl Drop for OnDisk {
    fn drop(&mut self) {
        // Best-effort cleanup of the scratch file.
        let _ = std::fs::remove_file(&self.path);
    }
}

/// Which physical backend a disk farm should use.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BackendKind {
    /// Bytes held in RAM (default; virtual I/O costs still charged).
    InMemory,
    /// Real files under the given scratch directory.
    OnDisk(PathBuf),
}

impl BackendKind {
    /// Instantiate a backend for file `name` of processor `rank`.
    pub fn open(&self, rank: usize, name: &str) -> Box<dyn Backend> {
        match self {
            BackendKind::InMemory => Box::new(InMemory::new()),
            BackendKind::OnDisk(dir) => {
                let path = dir.join(format!("p{rank:03}")).join(sanitize(name));
                Box::new(OnDisk::create(path).expect("create on-disk backend"))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise(mut b: Box<dyn Backend>) {
        assert!(b.is_empty());
        b.append(b"hello ");
        b.append(b"world");
        assert_eq!(b.len(), 11);
        assert_eq!(b.read(0, 5), b"hello");
        assert_eq!(b.read(6, 5), b"world");
        assert_eq!(b.read(0, 11), b"hello world");
        b.clear();
        assert_eq!(b.len(), 0);
        b.append(b"x");
        assert_eq!(b.read(0, 1), b"x");
    }

    #[test]
    fn in_memory_backend() {
        exercise(Box::new(InMemory::new()));
    }

    #[test]
    fn on_disk_backend() {
        let dir = std::env::temp_dir().join(format!("pario-test-{}", std::process::id()));
        exercise(BackendKind::OnDisk(dir.clone()).open(0, "file-a"));
        // Name sanitization must not collide trivially different names.
        let b = BackendKind::OnDisk(dir.clone()).open(1, "weird/name");
        drop(b);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    #[should_panic(expected = "read past end")]
    fn in_memory_read_past_end_panics() {
        let mut b = InMemory::new();
        b.append(b"ab");
        b.read(1, 2);
    }

    #[test]
    #[should_panic(expected = "read range overflow")]
    fn on_disk_read_offset_overflow_panics() {
        let dir = std::env::temp_dir().join(format!("pario-ovf-{}", std::process::id()));
        let mut b = BackendKind::OnDisk(dir.clone()).open(0, "ovf");
        b.append(b"abcdefgh");
        // offset + len wraps u64: must panic on the checked add, not pass
        // the bounds assert and fault in the read.
        b.read(u64::MAX - 3, 8);
    }

    #[test]
    fn read_into_reuses_the_caller_buffer() {
        let mut b = InMemory::new();
        b.append(b"hello world");
        let mut buf = [0u8; 5];
        b.read_into(6, &mut buf);
        assert_eq!(&buf, b"world");
        b.read_into(0, &mut buf);
        assert_eq!(&buf, b"hello");
    }
}
