//! Physical storage backends for a processor's local disk.
//!
//! Two backends share one trait: [`InMemory`] keeps bytes in RAM (fast, used
//! by tests and the figure harness — remember the *cost* of I/O is always
//! charged to the virtual clock regardless of backend), and [`OnDisk`]
//! stores real files under a temporary directory (used by the out-of-core
//! example to demonstrate genuinely disk-resident operation).

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::PathBuf;

/// Byte-level storage for one logical file.
pub trait Backend: Send {
    /// Append bytes at the end.
    fn append(&mut self, bytes: &[u8]);
    /// Read `len` bytes starting at `offset`. Panics if out of range
    /// (callers track logical lengths).
    fn read(&mut self, offset: u64, len: usize) -> Vec<u8>;
    /// Current length in bytes.
    fn len(&self) -> u64;
    /// Whether the file is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Discard all contents.
    fn clear(&mut self);
}

/// Heap-backed storage.
#[derive(Default)]
pub struct InMemory {
    data: Vec<u8>,
}

impl InMemory {
    /// New empty in-memory file.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Backend for InMemory {
    fn append(&mut self, bytes: &[u8]) {
        self.data.extend_from_slice(bytes);
    }

    fn read(&mut self, offset: u64, len: usize) -> Vec<u8> {
        let start = offset as usize;
        let end = start
            .checked_add(len)
            .expect("read range overflow");
        assert!(end <= self.data.len(), "read past end of in-memory file");
        self.data[start..end].to_vec()
    }

    fn len(&self) -> u64 {
        self.data.len() as u64
    }

    fn clear(&mut self) {
        self.data.clear();
    }
}

/// Real-file storage under a caller-provided directory.
pub struct OnDisk {
    path: PathBuf,
    file: File,
    len: u64,
}

impl OnDisk {
    /// Create (truncating) a real file at `path`.
    pub fn create(path: PathBuf) -> std::io::Result<Self> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        let file = OpenOptions::new()
            .create(true)
            .truncate(true)
            .read(true)
            .write(true)
            .open(&path)?;
        Ok(OnDisk { path, file, len: 0 })
    }

    /// Path of the underlying file.
    pub fn path(&self) -> &PathBuf {
        &self.path
    }
}

impl Backend for OnDisk {
    fn append(&mut self, bytes: &[u8]) {
        self.file
            .seek(SeekFrom::End(0))
            .and_then(|_| self.file.write_all(bytes))
            .expect("on-disk append failed");
        self.len += bytes.len() as u64;
    }

    fn read(&mut self, offset: u64, len: usize) -> Vec<u8> {
        assert!(offset + len as u64 <= self.len, "read past end of file");
        let mut buf = vec![0u8; len];
        self.file
            .seek(SeekFrom::Start(offset))
            .and_then(|_| self.file.read_exact(&mut buf))
            .expect("on-disk read failed");
        buf
    }

    fn len(&self) -> u64 {
        self.len
    }

    fn clear(&mut self) {
        self.file.set_len(0).expect("truncate failed");
        self.len = 0;
    }
}

impl Drop for OnDisk {
    fn drop(&mut self) {
        // Best-effort cleanup of the scratch file.
        let _ = std::fs::remove_file(&self.path);
    }
}

/// Which physical backend a disk farm should use.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BackendKind {
    /// Bytes held in RAM (default; virtual I/O costs still charged).
    InMemory,
    /// Real files under the given scratch directory.
    OnDisk(PathBuf),
}

impl BackendKind {
    /// Instantiate a backend for file `name` of processor `rank`.
    pub fn open(&self, rank: usize, name: &str) -> Box<dyn Backend> {
        match self {
            BackendKind::InMemory => Box::new(InMemory::new()),
            BackendKind::OnDisk(dir) => {
                let sanitized: String = name
                    .chars()
                    .map(|c| if c.is_alphanumeric() || c == '-' || c == '_' { c } else { '_' })
                    .collect();
                let path = dir.join(format!("p{rank:03}")).join(sanitized);
                Box::new(OnDisk::create(path).expect("create on-disk backend"))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise(mut b: Box<dyn Backend>) {
        assert!(b.is_empty());
        b.append(b"hello ");
        b.append(b"world");
        assert_eq!(b.len(), 11);
        assert_eq!(b.read(0, 5), b"hello");
        assert_eq!(b.read(6, 5), b"world");
        assert_eq!(b.read(0, 11), b"hello world");
        b.clear();
        assert_eq!(b.len(), 0);
        b.append(b"x");
        assert_eq!(b.read(0, 1), b"x");
    }

    #[test]
    fn in_memory_backend() {
        exercise(Box::new(InMemory::new()));
    }

    #[test]
    fn on_disk_backend() {
        let dir = std::env::temp_dir().join(format!("pario-test-{}", std::process::id()));
        exercise(BackendKind::OnDisk(dir.clone()).open(0, "file-a"));
        // Name sanitization must not collide trivially different names.
        let b = BackendKind::OnDisk(dir.clone()).open(1, "weird/name");
        drop(b);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    #[should_panic(expected = "read past end")]
    fn in_memory_read_past_end_panics() {
        let mut b = InMemory::new();
        b.append(b"ab");
        b.read(1, 2);
    }
}
