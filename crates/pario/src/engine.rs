//! Per-rank asynchronous disk engine: the layer between [`crate::NodeDisk`]
//! and the raw [`crate::backend::Backend`].
//!
//! The engine owns a [`crate::cache::BufferPool`] and drives the rank's
//! **I/O device timeline** (see [`pdc_cgm::Proc::io_device_submit`]):
//!
//! * a **read** walks the request's pages — hits cost nothing, runs of
//!   missing pages become one device request each (demand reads wait for
//!   completion, charging only the exposed stall);
//! * an **append** marks pages dirty in the pool (write-back: the device is
//!   charged when dirty pages are evicted or synced, coalesced into
//!   contiguous runs);
//! * a **prefetch** submits reads for missing pages without waiting —
//!   compute-independent I/O in the paper's taxonomy — and parks the pages
//!   *in flight*; a later consumer waits only for the unfinished remainder.
//!
//! The engine is timing metadata only: bytes always live in the backend, so
//! enabling it can never change computed results, and
//! [`EngineConfig::disabled`] detaches it entirely, leaving the legacy
//! synchronous path bit-identical.
//!
//! Unlike the synchronous path's whole-file heuristic
//! ([`pdc_cgm::DiskParams::transfer_cost_ws`]), the engine models residency
//! *explicitly*: misses are charged at cold cost and hits are free, with the
//! bounded budget deciding which is which.
//!
//! Execution-backend note: every "wait" here — demand-read completion,
//! prefetch consumption, [`pdc_cgm::Proc::io_device_sync`] — is pure
//! virtual-time arithmetic on the rank's *own* device timeline; nothing in
//! the engine physically blocks on another rank. The event-driven executor
//! ([`pdc_cgm::Backend::Event`]) therefore treats an engine-heavy rank as
//! ordinary compute: it never releases its admission slot inside the
//! engine, only at mailbox receives, and the backend-identity suite pins
//! the engine's timings bit-for-bit across both backends.

use std::collections::HashMap;

use pdc_cgm::{FaultError, IoTicket, Proc};

use crate::cache::{BufferPool, PageKey, PageState, ReplacementPolicy};

/// Evicted dirty pages are written back in coalesced runs once this many
/// have queued up (or at sync, whichever comes first).
const WRITE_BACK_BATCH_PAGES: usize = 16;

/// Configuration of one rank's asynchronous disk engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EngineConfig {
    /// Buffer-pool page size in bytes.
    pub page_bytes: usize,
    /// Buffer-pool byte budget. A budget smaller than one page disables the
    /// engine entirely (see [`EngineConfig::is_enabled`]).
    pub budget_bytes: usize,
    /// Page replacement policy.
    pub policy: ReplacementPolicy,
    /// Whether prefetch hints (task lookahead, sequential read-ahead) are
    /// honored. With prefetch off the engine still caches and write-backs.
    pub prefetch: bool,
}

impl EngineConfig {
    /// Engine off: no cache, no prefetch, synchronous charging — the exact
    /// legacy path (bit-identical virtual times; regression-tested).
    pub fn disabled() -> Self {
        EngineConfig {
            page_bytes: 64 * 1024,
            budget_bytes: 0,
            policy: ReplacementPolicy::Lru,
            prefetch: false,
        }
    }

    /// Engine on with `budget_bytes` of pool under `policy`.
    pub fn new(budget_bytes: usize, policy: ReplacementPolicy, prefetch: bool) -> Self {
        EngineConfig {
            page_bytes: 64 * 1024,
            budget_bytes,
            policy,
            prefetch,
        }
    }

    /// Whether this configuration attaches an engine at all (the pool must
    /// hold at least one page).
    pub fn is_enabled(&self) -> bool {
        self.page_bytes > 0 && self.budget_bytes >= self.page_bytes
    }
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig::disabled()
    }
}

/// One rank's asynchronous disk engine (see the module docs).
pub struct IoEngine {
    page_bytes: u64,
    prefetch_on: bool,
    pool: BufferPool,
    /// Evicted dirty pages queued for coalesced write-back.
    pending: Vec<PageKey>,
    /// Logical byte length per file id (for clamping the last page).
    file_bytes: HashMap<u64, u64>,
}

impl IoEngine {
    /// Build an engine from an enabled configuration. Panics when
    /// `cfg.is_enabled()` is false — callers gate on it.
    pub fn new(cfg: &EngineConfig) -> Self {
        assert!(cfg.is_enabled(), "IoEngine::new on a disabled config");
        IoEngine {
            page_bytes: cfg.page_bytes as u64,
            prefetch_on: cfg.prefetch,
            pool: BufferPool::new(cfg.policy, cfg.budget_bytes / cfg.page_bytes),
            pending: Vec::new(),
            file_bytes: HashMap::new(),
        }
    }

    /// Whether prefetch hints are honored.
    pub fn prefetch_enabled(&self) -> bool {
        self.prefetch_on
    }

    /// Pages currently cached (resident or in flight).
    pub fn cached_pages(&self) -> usize {
        self.pool.len()
    }

    /// Record `file`'s current logical length (create/append/load).
    pub fn note_file_len(&mut self, file: u64, len: u64) {
        self.file_bytes.insert(file, len);
    }

    /// Sample the pool and write-back state as gauges (see
    /// [`pdc_cgm::gauge`]). Pure observation; free when gauges are off.
    fn sample_pool(&self, proc: &mut Proc) {
        if !proc.gauges_enabled() {
            return;
        }
        proc.gauge("pario.pool.pages", self.pool.len() as f64);
        proc.gauge("pario.pool.dirty", self.pool.dirty_pages() as f64);
        proc.gauge("pario.pool.pinned", self.pool.pinned_pages() as f64);
        proc.gauge("pario.engine.pending", self.pending.len() as f64);
    }

    /// The file was deleted or truncated: drop its pages (dirty pages of a
    /// deleted scratch file never pay write-back — deliberately, a real
    /// write-back cache absorbs short-lived temporaries the same way) and
    /// purge its queued write-backs.
    pub fn invalidate_file(&mut self, file: u64) {
        self.pool.invalidate_file(file);
        self.pending.retain(|k| k.0 != file);
        self.file_bytes.remove(&file);
    }

    fn file_len(&self, file: u64) -> u64 {
        self.file_bytes.get(&file).copied().unwrap_or(0)
    }

    /// Byte size of pages `[p0, p1]` of `file`, the last page clamped to the
    /// file's logical length.
    fn run_bytes(&self, file: u64, p0: u64, p1: u64) -> usize {
        let start = p0 * self.page_bytes;
        let end = ((p1 + 1) * self.page_bytes).min(self.file_len(file).max(start));
        (end - start) as usize
    }

    /// Charge the timing of reading `[offset, offset + len)` of `file`.
    /// Resident pages are free; in-flight pages wait out their remaining
    /// device time; runs of missing pages become one demand device request
    /// each. The caller performs the actual byte transfer from the backend.
    pub fn read(
        &mut self,
        proc: &mut Proc,
        file: u64,
        offset: u64,
        len: usize,
    ) -> Result<(), FaultError> {
        if len == 0 {
            return Ok(());
        }
        let p0 = offset / self.page_bytes;
        let p1 = (offset + len as u64 - 1) / self.page_bytes;
        let mut pinned: Vec<PageKey> = Vec::new();
        let mut run_start: Option<u64> = None;
        let mut result = Ok(());
        for p in p0..=p1 {
            let key = (file, p);
            match self.pool.state(key) {
                Some(PageState::Resident) => {
                    if let Some(rs) = run_start.take() {
                        if let Err(e) = self.fetch_run(proc, file, rs, p - 1, &mut pinned) {
                            result = Err(e);
                            break;
                        }
                    }
                    proc.counters.cache_hits += 1;
                    self.pool.touch(key);
                    self.pool.set_pinned(key, true);
                    pinned.push(key);
                }
                Some(PageState::InFlight(_)) => {
                    if let Some(rs) = run_start.take() {
                        if let Err(e) = self.fetch_run(proc, file, rs, p - 1, &mut pinned) {
                            result = Err(e);
                            break;
                        }
                    }
                    let ticket = self.pool.take_ticket(key).expect("in-flight page");
                    proc.io_device_wait(ticket);
                    // A prefetched page still counts as a hit: the consumer
                    // paid (at most) the stall, not a full device request.
                    proc.counters.cache_hits += 1;
                    self.pool.touch(key);
                    self.pool.set_pinned(key, true);
                    pinned.push(key);
                }
                None => {
                    run_start.get_or_insert(p);
                }
            }
        }
        if result.is_ok() {
            if let Some(rs) = run_start.take() {
                result = self.fetch_run(proc, file, rs, p1, &mut pinned);
            }
        }
        // Sample before unpinning so the pinned high-water mark of this
        // request is observable.
        self.sample_pool(proc);
        for key in pinned {
            self.pool.set_pinned(key, false);
        }
        self.maybe_flush(proc);
        result
    }

    /// Demand-fetch pages `[p0, p1]` of `file` as one device request and
    /// wait for it (the consumer needs the data now).
    fn fetch_run(
        &mut self,
        proc: &mut Proc,
        file: u64,
        p0: u64,
        p1: u64,
        pinned: &mut Vec<PageKey>,
    ) -> Result<(), FaultError> {
        let bytes = self.run_bytes(file, p0, p1);
        let ticket = proc.try_io_device_submit(bytes, true)?;
        proc.io_device_wait(ticket);
        for p in p0..=p1 {
            let key = (file, p);
            proc.counters.cache_misses += 1;
            self.insert(proc, key, PageState::Resident, false);
            self.pool.set_pinned(key, true);
            pinned.push(key);
        }
        Ok(())
    }

    /// Pool insert with eviction bookkeeping (dirty victims queue for
    /// write-back; every victim counts as an eviction).
    fn insert(&mut self, proc: &mut Proc, key: PageKey, state: PageState, dirty: bool) {
        if let Some(ev) = self.pool.insert(key, state, dirty) {
            proc.counters.cache_evictions += 1;
            if ev.dirty {
                self.pending.push(ev.key);
            }
        }
    }

    /// Record an append of `len` bytes at `offset` of `file`: the touched
    /// pages go dirty in the pool (write-back — the device is charged when
    /// they are evicted or synced), and the file's length advances.
    pub fn append(&mut self, proc: &mut Proc, file: u64, offset: u64, len: usize) {
        if len == 0 {
            return;
        }
        let new_len = offset + len as u64;
        self.file_bytes.insert(file, new_len);
        let p0 = offset / self.page_bytes;
        let p1 = (new_len - 1) / self.page_bytes;
        for p in p0..=p1 {
            let key = (file, p);
            if self.pool.state(key).is_some() {
                self.pool.touch(key);
                self.pool.mark_dirty(key);
            } else {
                self.insert(proc, key, PageState::Resident, true);
            }
        }
        self.sample_pool(proc);
        self.maybe_flush(proc);
    }

    /// Speculatively read `[offset, offset + len)` of `file` onto the device
    /// timeline without waiting (compute-independent I/O). Missing pages are
    /// parked in flight; a later consumer waits only for the remainder. The
    /// request is capped at half the pool budget so speculation cannot flood
    /// the cache, and submission faults are swallowed — the demand read will
    /// retry with fresh fault-stream draws.
    pub fn prefetch(&mut self, proc: &mut Proc, file: u64, offset: u64, len: usize) {
        if !self.prefetch_on || len == 0 {
            return;
        }
        let flen = self.file_len(file);
        if offset >= flen {
            return;
        }
        let len = (len as u64).min(flen - offset);
        let p0 = offset / self.page_bytes;
        let mut p1 = (offset + len - 1) / self.page_bytes;
        let cap = (self.pool.budget_pages() / 2).max(1) as u64;
        p1 = p1.min(p0 + cap - 1);
        let mut run_start: Option<u64> = None;
        for p in p0..=p1 {
            let key = (file, p);
            if self.pool.state(key).is_none() {
                run_start.get_or_insert(p);
            } else if let Some(rs) = run_start.take() {
                self.prefetch_run(proc, file, rs, p - 1);
            }
        }
        if let Some(rs) = run_start.take() {
            self.prefetch_run(proc, file, rs, p1);
        }
        self.sample_pool(proc);
        self.maybe_flush(proc);
    }

    fn prefetch_run(&mut self, proc: &mut Proc, file: u64, p0: u64, p1: u64) {
        let bytes = self.run_bytes(file, p0, p1);
        let Ok(ticket) = proc.try_io_device_submit(bytes, true) else {
            return; // transiently unreadable: leave the pages for demand
        };
        let npages = p1 - p0 + 1;
        // Each page carries its share of the request's service so overlap
        // accounting stays exact however the waits interleave.
        let share = IoTicket {
            completion: ticket.completion,
            service: ticket.service / npages as f64,
            req: ticket.req,
        };
        if proc.gauges_enabled() {
            // The prefetched pages are in flight from submission until the
            // request completes on the device timeline.
            proc.gauge_delta("pario.prefetch.inflight", proc.clock(), npages as f64);
            proc.gauge_delta("pario.prefetch.inflight", ticket.completion, -(npages as f64));
        }
        for p in p0..=p1 {
            proc.counters.prefetches += 1;
            self.insert(proc, (file, p), PageState::InFlight(share), false);
        }
    }

    fn maybe_flush(&mut self, proc: &mut Proc) {
        if self.pending.len() >= WRITE_BACK_BATCH_PAGES {
            self.flush_pending(proc);
        }
    }

    /// Submit queued dirty write-backs as coalesced asynchronous device
    /// writes (one request per contiguous page run), without waiting.
    fn flush_pending(&mut self, proc: &mut Proc) {
        if self.pending.is_empty() {
            return;
        }
        let mut keys = std::mem::take(&mut self.pending);
        keys.sort_unstable();
        keys.dedup();
        let mut i = 0;
        while i < keys.len() {
            let (file, p0) = keys[i];
            let mut p1 = p0;
            while i + 1 < keys.len() && keys[i + 1] == (file, p1 + 1) {
                p1 += 1;
                i += 1;
            }
            let bytes = self.run_bytes(file, p0, p1);
            if bytes > 0 {
                proc.io_device_submit(bytes, false);
            }
            i += 1;
        }
    }

    /// Flush every dirty page and wait for the device to drain. Called at
    /// end of run (or any durability point); afterwards the pool holds only
    /// clean resident pages.
    pub fn sync(&mut self, proc: &mut Proc) {
        let dirty = self.pool.drain_dirty();
        self.pending.extend(dirty);
        self.flush_pending(proc);
        proc.io_device_sync();
        self.pool.settle_all();
        self.sample_pool(proc);
    }
}
