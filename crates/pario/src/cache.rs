//! Page-granular buffer pool with a bounded byte budget and pluggable
//! replacement.
//!
//! The pool is **timing metadata only**: the simulated machine's data always
//! lives in the [`crate::backend::Backend`], so a page here records whether a
//! byte range would have been resident in a real node's buffer cache — a hit
//! costs nothing on the device timeline, a miss is charged by the
//! [`crate::engine::IoEngine`]. Pages are keyed by `(file id, page index)`;
//! file ids survive renames and are never reused, so stale pages cannot
//! alias a recreated file.
//!
//! Replacement is pluggable ([`ReplacementPolicy`]): classic LRU, the CLOCK
//! second-chance approximation, and MRU — the policy of choice for repeated
//! sequential scans over a file larger than the budget, where LRU evicts
//! every page right before its next use (sequential flooding).

use pdc_cgm::IoTicket;
use std::collections::HashMap;

/// Which page does a replacement victim come from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplacementPolicy {
    /// Evict the least-recently-used page.
    Lru,
    /// Second-chance approximation of LRU: a sweeping hand clears reference
    /// bits and evicts the first page found unreferenced.
    Clock,
    /// Evict the most-recently-used page — optimal for cyclic sequential
    /// scans that do not fit the budget (keeps a stable prefix resident).
    Mru,
}

/// Key of one cached page: `(file id, page index within the file)`.
pub type PageKey = (u64, u64);

/// Whether a page's device request has completed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PageState {
    /// The page is (logically) in memory.
    Resident,
    /// A device read for the page is in flight; the ticket carries its
    /// completion time and this page's share of the request's service.
    InFlight(IoTicket),
}

struct Page {
    key: PageKey,
    state: PageState,
    dirty: bool,
    pinned: bool,
    referenced: bool,
    last_used: u64,
}

/// A page evicted by [`BufferPool::insert`]; dirty pages must be written
/// back by the caller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Evicted {
    /// Key of the evicted page.
    pub key: PageKey,
    /// Whether it held not-yet-written-back data.
    pub dirty: bool,
}

/// Bounded pool of page frames. All operations are deterministic: victims
/// are selected by slab scans, never by hash-map iteration order.
pub struct BufferPool {
    policy: ReplacementPolicy,
    budget_pages: usize,
    slots: Vec<Option<Page>>,
    free: Vec<usize>,
    map: HashMap<PageKey, usize>,
    tick: u64,
    hand: usize,
}

impl BufferPool {
    /// Pool holding at most `budget_pages` pages under `policy`.
    pub fn new(policy: ReplacementPolicy, budget_pages: usize) -> Self {
        BufferPool {
            policy,
            budget_pages,
            slots: Vec::new(),
            free: Vec::new(),
            map: HashMap::new(),
            tick: 0,
            hand: 0,
        }
    }

    /// Number of pages currently held.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the pool holds no pages.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Maximum pages the pool may hold.
    pub fn budget_pages(&self) -> usize {
        self.budget_pages
    }

    /// Number of dirty (not-yet-written-back) pages currently held.
    pub fn dirty_pages(&self) -> usize {
        self.slots
            .iter()
            .filter(|s| s.as_ref().is_some_and(|p| p.dirty))
            .count()
    }

    /// Number of pinned (eviction-exempt) pages currently held.
    pub fn pinned_pages(&self) -> usize {
        self.slots
            .iter()
            .filter(|s| s.as_ref().is_some_and(|p| p.pinned))
            .count()
    }

    /// State of the page under `key`, if cached.
    pub fn state(&self, key: PageKey) -> Option<PageState> {
        self.map
            .get(&key)
            .map(|&i| self.slots[i].as_ref().expect("mapped slot").state)
    }

    fn page_mut(&mut self, key: PageKey) -> Option<&mut Page> {
        let i = *self.map.get(&key)?;
        self.slots[i].as_mut()
    }

    /// Record a use of the page (updates the recency stamp and CLOCK
    /// reference bit). No-op when the page is not cached.
    pub fn touch(&mut self, key: PageKey) {
        self.tick += 1;
        let tick = self.tick;
        if let Some(p) = self.page_mut(key) {
            p.last_used = tick;
            p.referenced = true;
        }
    }

    /// Pin (`true`) or unpin (`false`) a page: pinned pages are never chosen
    /// as replacement victims. No-op when the page is not cached.
    pub fn set_pinned(&mut self, key: PageKey, pinned: bool) {
        if let Some(p) = self.page_mut(key) {
            p.pinned = pinned;
        }
    }

    /// Mark a cached page dirty (it holds data not yet written back).
    pub fn mark_dirty(&mut self, key: PageKey) {
        if let Some(p) = self.page_mut(key) {
            p.dirty = true;
        }
    }

    /// If the page's read is in flight, return its ticket and mark the page
    /// resident (the caller is about to wait on it).
    pub fn take_ticket(&mut self, key: PageKey) -> Option<IoTicket> {
        let p = self.page_mut(key)?;
        match p.state {
            PageState::InFlight(t) => {
                p.state = PageState::Resident;
                Some(t)
            }
            PageState::Resident => None,
        }
    }

    /// Insert a page, evicting at most one victim when at budget. Returns
    /// the victim (the caller must write back dirty ones). If every frame is
    /// pinned or in flight the pool goes transiently over budget instead of
    /// corrupting an unevictable page. Inserting an already-cached key
    /// updates its state in place (no eviction).
    pub fn insert(&mut self, key: PageKey, state: PageState, dirty: bool) -> Option<Evicted> {
        self.tick += 1;
        let tick = self.tick;
        if let Some(p) = self.page_mut(key) {
            p.state = state;
            p.dirty |= dirty;
            p.last_used = tick;
            p.referenced = true;
            return None;
        }
        if self.budget_pages == 0 {
            return None; // a zero-budget pool caches nothing
        }
        let evicted = if self.map.len() >= self.budget_pages {
            self.evict_one()
        } else {
            None
        };
        let page = Page {
            key,
            state,
            dirty,
            pinned: false,
            referenced: true,
            last_used: tick,
        };
        let slot = match self.free.pop() {
            Some(i) => {
                self.slots[i] = Some(page);
                i
            }
            None => {
                self.slots.push(Some(page));
                self.slots.len() - 1
            }
        };
        self.map.insert(key, slot);
        evicted
    }

    /// Whether slot `i` holds an evictable page (resident, unpinned).
    fn evictable(&self, i: usize) -> bool {
        matches!(
            &self.slots[i],
            Some(p) if !p.pinned && matches!(p.state, PageState::Resident)
        )
    }

    fn evict_slot(&mut self, i: usize) -> Evicted {
        let p = self.slots[i].take().expect("evicting empty slot");
        self.map.remove(&p.key);
        self.free.push(i);
        Evicted { key: p.key, dirty: p.dirty }
    }

    fn evict_one(&mut self) -> Option<Evicted> {
        match self.policy {
            ReplacementPolicy::Lru => {
                let victim = (0..self.slots.len())
                    .filter(|&i| self.evictable(i))
                    .min_by_key(|&i| self.slots[i].as_ref().unwrap().last_used)?;
                Some(self.evict_slot(victim))
            }
            ReplacementPolicy::Mru => {
                let victim = (0..self.slots.len())
                    .filter(|&i| self.evictable(i))
                    .max_by_key(|&i| self.slots[i].as_ref().unwrap().last_used)?;
                Some(self.evict_slot(victim))
            }
            ReplacementPolicy::Clock => {
                let n = self.slots.len();
                if n == 0 {
                    return None;
                }
                // Two full sweeps: the first may only clear reference bits,
                // the second must then find an unreferenced page unless
                // everything is pinned or in flight.
                for _ in 0..2 * n {
                    let i = self.hand;
                    self.hand = (self.hand + 1) % n;
                    if !self.evictable(i) {
                        continue;
                    }
                    let p = self.slots[i].as_mut().unwrap();
                    if p.referenced {
                        p.referenced = false;
                    } else {
                        return Some(self.evict_slot(i));
                    }
                }
                // All evictable pages kept their reference bit set between
                // sweeps (impossible) or none are evictable: fall back to
                // the first evictable slot, if any.
                let victim = (0..n).find(|&i| self.evictable(i))?;
                Some(self.evict_slot(victim))
            }
        }
    }

    /// Drop every page of `file` (deleted or truncated: its dirty pages no
    /// longer need write-back). Returns how many pages were dropped.
    pub fn invalidate_file(&mut self, file: u64) -> usize {
        let mut dropped = 0;
        for i in 0..self.slots.len() {
            if matches!(&self.slots[i], Some(p) if p.key.0 == file) {
                self.evict_slot(i);
                dropped += 1;
            }
        }
        dropped
    }

    /// Clear the dirty flag on every resident page, returning their keys
    /// sorted (deterministic flush order for write-back).
    pub fn drain_dirty(&mut self) -> Vec<PageKey> {
        let mut keys = Vec::new();
        for slot in self.slots.iter_mut().flatten() {
            if slot.dirty {
                slot.dirty = false;
                keys.push(slot.key);
            }
        }
        keys.sort_unstable();
        keys
    }

    /// Mark every in-flight page resident (used after a device sync: the
    /// device is idle, so every outstanding request has completed).
    pub fn settle_all(&mut self) {
        for slot in self.slots.iter_mut().flatten() {
            slot.state = PageState::Resident;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(f: u64, p: u64) -> PageKey {
        (f, p)
    }

    #[test]
    fn lru_evicts_the_coldest_page() {
        let mut pool = BufferPool::new(ReplacementPolicy::Lru, 2);
        assert!(pool.insert(k(0, 0), PageState::Resident, false).is_none());
        assert!(pool.insert(k(0, 1), PageState::Resident, false).is_none());
        pool.touch(k(0, 0)); // 0 is now warmer than 1
        let ev = pool.insert(k(0, 2), PageState::Resident, false).unwrap();
        assert_eq!(ev.key, k(0, 1));
        assert!(pool.state(k(0, 0)).is_some());
        assert!(pool.state(k(0, 2)).is_some());
        assert_eq!(pool.len(), 2);
    }

    #[test]
    fn mru_keeps_a_stable_prefix_under_cyclic_scan() {
        let mut pool = BufferPool::new(ReplacementPolicy::Mru, 3);
        // Two cyclic scans over 5 pages. MRU keeps an early prefix resident,
        // so the second scan hits at least its first pages; LRU would evict
        // each page right before its reuse and hit nothing.
        for _ in 0..2 {
            for p in 0..5 {
                if pool.state(k(0, p)).is_none() {
                    pool.insert(k(0, p), PageState::Resident, false);
                } else {
                    pool.touch(k(0, p));
                }
            }
        }
        assert!(pool.state(k(0, 0)).is_some(), "MRU must keep the prefix");

        let mut lru = BufferPool::new(ReplacementPolicy::Lru, 3);
        for _ in 0..2 {
            for p in 0..5 {
                if lru.state(k(0, p)).is_none() {
                    lru.insert(k(0, p), PageState::Resident, false);
                } else {
                    lru.touch(k(0, p));
                }
            }
        }
        assert!(lru.state(k(0, 0)).is_none(), "LRU floods on a cyclic scan");
    }

    #[test]
    fn clock_gives_referenced_pages_a_second_chance() {
        let mut pool = BufferPool::new(ReplacementPolicy::Clock, 2);
        pool.insert(k(0, 0), PageState::Resident, false);
        pool.insert(k(0, 1), PageState::Resident, false);
        pool.touch(k(0, 0));
        pool.touch(k(0, 1));
        // Both referenced: the hand clears page 0's bit, then page 1's,
        // wraps, and evicts page 0 (first unreferenced).
        let ev = pool.insert(k(0, 2), PageState::Resident, false).unwrap();
        assert_eq!(ev.key, k(0, 0));
    }

    #[test]
    fn pinned_pages_are_never_victims() {
        let mut pool = BufferPool::new(ReplacementPolicy::Lru, 1);
        pool.insert(k(0, 0), PageState::Resident, true);
        pool.set_pinned(k(0, 0), true);
        // Budget forces an eviction but the only candidate is pinned: the
        // pool transiently exceeds its budget rather than evicting it.
        assert!(pool.insert(k(0, 1), PageState::Resident, false).is_none());
        assert_eq!(pool.len(), 2);
        pool.set_pinned(k(0, 0), false);
        let ev = pool.insert(k(0, 2), PageState::Resident, false).unwrap();
        assert!(ev.dirty);
        assert_eq!(ev.key, k(0, 0));
    }

    #[test]
    fn invalidate_drops_only_that_file() {
        let mut pool = BufferPool::new(ReplacementPolicy::Lru, 8);
        pool.insert(k(1, 0), PageState::Resident, true);
        pool.insert(k(1, 1), PageState::Resident, false);
        pool.insert(k(2, 0), PageState::Resident, false);
        assert_eq!(pool.invalidate_file(1), 2);
        assert!(pool.state(k(1, 0)).is_none());
        assert!(pool.state(k(2, 0)).is_some());
    }

    #[test]
    fn drain_dirty_is_sorted_and_clears_flags() {
        let mut pool = BufferPool::new(ReplacementPolicy::Lru, 8);
        pool.insert(k(2, 1), PageState::Resident, true);
        pool.insert(k(1, 3), PageState::Resident, true);
        pool.insert(k(1, 0), PageState::Resident, false);
        assert_eq!(pool.drain_dirty(), vec![k(1, 3), k(2, 1)]);
        assert!(pool.drain_dirty().is_empty());
    }

    #[test]
    fn zero_budget_pool_caches_nothing() {
        let mut pool = BufferPool::new(ReplacementPolicy::Lru, 0);
        assert!(pool.insert(k(0, 0), PageState::Resident, false).is_none());
        assert!(pool.is_empty());
        assert!(pool.state(k(0, 0)).is_none());
    }
}
