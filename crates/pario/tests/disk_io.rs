//! Direct tests of the typed-file disk layer: chunked readers, buffered
//! writers, and — crucially for the reproduction — the virtual-time cost
//! accounting of every I/O request.

use pdc_cgm::{Cluster, MachineConfig};
use pdc_pario::{BufferedWriter, DiskFarm};

#[test]
fn read_write_roundtrip_and_ranges() {
    let farm = DiskFarm::in_memory(1);
    let cluster = Cluster::new(1);
    let out = cluster.run(|proc| {
        let mut disk = farm.lock(0);
        let f = disk.create::<u64>("data");
        let values: Vec<u64> = (0..100).collect();
        disk.append(proc, &f, &values);
        assert_eq!(disk.num_records(&f), 100);
        assert_eq!(disk.read_range(proc, &f, 10, 5), vec![10, 11, 12, 13, 14]);
        assert_eq!(disk.read_range(proc, &f, 0, 0), Vec::<u64>::new());
        disk.read_all(proc, &f)
    });
    assert_eq!(out.results[0], (0..100).collect::<Vec<u64>>());
}

#[test]
fn chunked_reader_visits_everything_in_order() {
    let farm = DiskFarm::in_memory(1);
    let cluster = Cluster::new(1);
    let out = cluster.run(|proc| {
        let mut disk = farm.lock(0);
        let f = disk.create::<u64>("data");
        let values: Vec<u64> = (0..103).collect(); // not a multiple of 10
        disk.append(proc, &f, &values);
        let mut reader = disk.reader(&f, 10);
        let mut collected = Vec::new();
        let mut chunks = 0;
        while let Some(chunk) = reader.next_chunk(&mut disk, proc) {
            assert!(chunk.len() <= 10);
            collected.extend(chunk);
            chunks += 1;
        }
        (collected, chunks, reader.position())
    });
    let (collected, chunks, pos) = &out.results[0];
    assert_eq!(collected, &(0..103).collect::<Vec<u64>>());
    assert_eq!(*chunks, 11);
    assert_eq!(*pos, 103);
}

#[test]
fn buffered_writer_batches_requests() {
    let farm = DiskFarm::in_memory(1);
    let cluster = Cluster::new(1);
    let out = cluster.run(|proc| {
        let mut disk = farm.lock(0);
        let f = disk.create::<u64>("data");
        let mut w = BufferedWriter::new(f.clone(), 16);
        for i in 0..100u64 {
            w.push(&mut disk, proc, i);
        }
        let before_flush = proc.counters.disk_writes;
        w.flush(&mut disk, proc);
        assert_eq!(w.buffered(), 0);
        (disk.num_records(&f), before_flush, proc.counters.disk_writes)
    });
    let (records, before, after) = out.results[0];
    assert_eq!(records, 100);
    // 100 records at 16 per request: 6 full flushes + 1 final partial.
    assert_eq!(before, 6);
    assert_eq!(after, 7);
}

#[test]
fn io_costs_follow_the_disk_model() {
    // With the buffer cache disabled (cache_bytes = 0), each request costs
    // exactly latency + bytes/bandwidth.
    let mut cfg = MachineConfig::default();
    cfg.cost.disk.access_latency = 0.004;
    cfg.cost.disk.bandwidth = 1.0e6;
    cfg.cost.disk.cache_bytes = 0;
    let farm = DiskFarm::in_memory(1);
    let cluster = Cluster::with_config(1, cfg);
    let out = cluster.run(|proc| {
        let mut disk = farm.lock(0);
        let f = disk.create::<u64>("data");
        disk.append(proc, &f, &vec![0u64; 1000]); // 8000 bytes
        let after_write = proc.clock();
        let _ = disk.read_range(proc, &f, 0, 500); // 4000 bytes
        (after_write, proc.clock())
    });
    let (w, total) = out.results[0];
    assert!((w - (0.004 + 8_000.0 / 1.0e6)).abs() < 1e-12, "write cost {w}");
    let r = total - w;
    assert!((r - (0.004 + 4_000.0 / 1.0e6)).abs() < 1e-12, "read cost {r}");
}

#[test]
fn buffer_cache_makes_small_files_cheap() {
    let mut cfg = MachineConfig::default();
    cfg.cost.disk.access_latency = 0.01;
    cfg.cost.disk.bandwidth = 1.0e6;
    cfg.cost.disk.cache_bytes = 10_000;
    cfg.cost.disk.cached_bandwidth = 100.0e6;
    let farm = DiskFarm::in_memory(1);
    let cluster = Cluster::with_config(1, cfg);
    let out = cluster.run(|proc| {
        let mut disk = farm.lock(0);
        // Small file: fits the cache entirely.
        let small = disk.create::<u64>("small");
        disk.append(proc, &small, &vec![1u64; 1_000]); // 8 KB <= 10 KB
        let t_small_write = proc.clock();
        // Large file: exceeds the cache.
        let large = disk.create::<u64>("large");
        disk.append(proc, &large, &vec![1u64; 2_000]); // 16 KB > 10 KB
        let t_large_write = proc.clock() - t_small_write;
        (t_small_write, t_large_write)
    });
    let (small, large) = out.results[0];
    assert!(
        small * 10.0 < large,
        "cached write {small} should be far cheaper than cold write {large}"
    );
}

#[test]
fn delete_reclaims_space_and_uncharged_helpers_are_free() {
    let farm = DiskFarm::in_memory(2);
    {
        let mut disk = farm.lock(0);
        let f = disk.create::<u64>("x");
        disk.append_uncharged(&f, &[1, 2, 3]);
        assert_eq!(disk.read_all_uncharged(&f), vec![1, 2, 3]);
        assert_eq!(disk.used_bytes(), 24);
        disk.delete("x");
        assert!(!disk.exists("x"));
        assert_eq!(disk.used_bytes(), 0);
    }
    assert_eq!(farm.used_bytes(), 0);
}

#[test]
#[should_panic(expected = "type mismatch")]
fn reopening_with_wrong_type_panics() {
    let farm = DiskFarm::in_memory(1);
    let mut disk = farm.lock(0);
    disk.create::<u64>("x");
    let _ = disk.open::<u8>("x");
}

#[test]
#[should_panic(expected = "read_range")]
fn reading_past_end_panics() {
    let farm = DiskFarm::in_memory(1);
    let cluster = Cluster::new(1);
    cluster.run(|proc| {
        let mut disk = farm.lock(0);
        let f = disk.create::<u64>("x");
        disk.append(proc, &f, &[1, 2, 3]);
        let _ = disk.read_range(proc, &f, 2, 5);
    });
}
