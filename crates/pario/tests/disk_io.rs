//! Direct tests of the typed-file disk layer: chunked readers, buffered
//! writers, and — crucially for the reproduction — the virtual-time cost
//! accounting of every I/O request.

use pdc_cgm::{Cluster, FaultPlan, MachineConfig};
use pdc_pario::{BackendKind, BufferedWriter, DiskFarm};

#[test]
fn read_write_roundtrip_and_ranges() {
    let farm = DiskFarm::in_memory(1);
    let cluster = Cluster::new(1);
    let out = cluster.run(|proc| {
        let mut disk = farm.lock(0);
        let f = disk.create::<u64>("data");
        let values: Vec<u64> = (0..100).collect();
        disk.append(proc, &f, &values);
        assert_eq!(disk.num_records(&f), 100);
        assert_eq!(disk.read_range(proc, &f, 10, 5), vec![10, 11, 12, 13, 14]);
        assert_eq!(disk.read_range(proc, &f, 0, 0), Vec::<u64>::new());
        disk.read_all(proc, &f)
    });
    assert_eq!(out.results[0], (0..100).collect::<Vec<u64>>());
}

#[test]
fn chunked_reader_visits_everything_in_order() {
    let farm = DiskFarm::in_memory(1);
    let cluster = Cluster::new(1);
    let out = cluster.run(|proc| {
        let mut disk = farm.lock(0);
        let f = disk.create::<u64>("data");
        let values: Vec<u64> = (0..103).collect(); // not a multiple of 10
        disk.append(proc, &f, &values);
        let mut reader = disk.reader(&f, 10);
        let mut collected = Vec::new();
        let mut chunks = 0;
        while let Some(chunk) = reader.next_chunk(&mut disk, proc) {
            assert!(chunk.len() <= 10);
            collected.extend(chunk);
            chunks += 1;
        }
        (collected, chunks, reader.position())
    });
    let (collected, chunks, pos) = &out.results[0];
    assert_eq!(collected, &(0..103).collect::<Vec<u64>>());
    assert_eq!(*chunks, 11);
    assert_eq!(*pos, 103);
}

#[test]
fn buffered_writer_batches_requests() {
    let farm = DiskFarm::in_memory(1);
    let cluster = Cluster::new(1);
    let out = cluster.run(|proc| {
        let mut disk = farm.lock(0);
        let f = disk.create::<u64>("data");
        let mut w = BufferedWriter::new(f.clone(), 16);
        for i in 0..100u64 {
            w.push(&mut disk, proc, i);
        }
        let before_flush = proc.counters.disk_writes;
        w.flush(&mut disk, proc);
        assert_eq!(w.buffered(), 0);
        (disk.num_records(&f), before_flush, proc.counters.disk_writes)
    });
    let (records, before, after) = out.results[0];
    assert_eq!(records, 100);
    // 100 records at 16 per request: 6 full flushes + 1 final partial.
    assert_eq!(before, 6);
    assert_eq!(after, 7);
}

#[test]
fn io_costs_follow_the_disk_model() {
    // With the buffer cache disabled (cache_bytes = 0), each request costs
    // exactly latency + bytes/bandwidth.
    let mut cfg = MachineConfig::default();
    cfg.cost.disk.access_latency = 0.004;
    cfg.cost.disk.bandwidth = 1.0e6;
    cfg.cost.disk.cache_bytes = 0;
    let farm = DiskFarm::in_memory(1);
    let cluster = Cluster::with_config(1, cfg);
    let out = cluster.run(|proc| {
        let mut disk = farm.lock(0);
        let f = disk.create::<u64>("data");
        disk.append(proc, &f, &vec![0u64; 1000]); // 8000 bytes
        let after_write = proc.clock();
        let _ = disk.read_range(proc, &f, 0, 500); // 4000 bytes
        (after_write, proc.clock())
    });
    let (w, total) = out.results[0];
    assert!((w - (0.004 + 8_000.0 / 1.0e6)).abs() < 1e-12, "write cost {w}");
    let r = total - w;
    assert!((r - (0.004 + 4_000.0 / 1.0e6)).abs() < 1e-12, "read cost {r}");
}

#[test]
fn buffer_cache_makes_small_files_cheap() {
    let mut cfg = MachineConfig::default();
    cfg.cost.disk.access_latency = 0.01;
    cfg.cost.disk.bandwidth = 1.0e6;
    cfg.cost.disk.cache_bytes = 10_000;
    cfg.cost.disk.cached_bandwidth = 100.0e6;
    let farm = DiskFarm::in_memory(1);
    let cluster = Cluster::with_config(1, cfg);
    let out = cluster.run(|proc| {
        let mut disk = farm.lock(0);
        // Small file: fits the cache entirely.
        let small = disk.create::<u64>("small");
        disk.append(proc, &small, &vec![1u64; 1_000]); // 8 KB <= 10 KB
        let t_small_write = proc.clock();
        // Large file: exceeds the cache.
        let large = disk.create::<u64>("large");
        disk.append(proc, &large, &vec![1u64; 2_000]); // 16 KB > 10 KB
        let t_large_write = proc.clock() - t_small_write;
        (t_small_write, t_large_write)
    });
    let (small, large) = out.results[0];
    assert!(
        small * 10.0 < large,
        "cached write {small} should be far cheaper than cold write {large}"
    );
}

#[test]
fn delete_reclaims_space_and_uncharged_helpers_are_free() {
    let farm = DiskFarm::in_memory(2);
    {
        let mut disk = farm.lock(0);
        let f = disk.create::<u64>("x");
        disk.append_uncharged(&f, &[1, 2, 3]);
        assert_eq!(disk.read_all_uncharged(&f), vec![1, 2, 3]);
        assert_eq!(disk.used_bytes(), 24);
        disk.delete("x");
        assert!(!disk.exists("x"));
        assert_eq!(disk.used_bytes(), 0);
    }
    assert_eq!(farm.used_bytes(), 0);
}

/// Rename must move the physical storage with the logical name: after
/// renaming, re-creating a file under the *old* name must not truncate or
/// alias the renamed file's bytes. (This is the regression test for the
/// on-disk backend leaving its scratch file at the old path.)
fn rename_keeps_data_after_old_name_is_reused(kind: BackendKind) {
    let farm = DiskFarm::new(1, kind);
    let mut disk = farm.lock(0);
    let a = disk.create::<u64>("a");
    disk.append_uncharged(&a, &[1, 2, 3]);
    disk.rename("a", "b");
    assert!(!disk.exists("a"));
    let b = disk.open::<u64>("b");
    // Re-create "a": with the old bug this truncated b's on-disk bytes.
    let a2 = disk.create::<u64>("a");
    disk.append_uncharged(&a2, &[9, 9]);
    assert_eq!(disk.read_all_uncharged(&b), vec![1, 2, 3]);
    assert_eq!(disk.read_all_uncharged(&a2), vec![9, 9]);
    // Rename over an existing destination replaces it cleanly.
    disk.rename("a", "b");
    let b2 = disk.open::<u64>("b");
    assert_eq!(disk.read_all_uncharged(&b2), vec![9, 9]);
}

#[test]
fn rename_in_memory_backend() {
    rename_keeps_data_after_old_name_is_reused(BackendKind::InMemory);
}

#[test]
fn rename_on_disk_backend() {
    let dir = std::env::temp_dir().join(format!("pario-rename-{}", std::process::id()));
    rename_keeps_data_after_old_name_is_reused(BackendKind::OnDisk(dir.clone()));
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn streaming_roundtrip_under_transient_disk_faults() {
    // ChunkedReader + BufferedWriter under injected transient read errors:
    // retries must charge the clock and the data must round-trip exactly.
    let p = 2;
    let farm = DiskFarm::in_memory(p);
    let mut faults = FaultPlan::with_seed(41);
    faults.disk.read_error_prob = 0.2;
    let cluster = Cluster::with_config(p, MachineConfig { faults, ..MachineConfig::default() });
    let out = cluster.run(|proc| {
        let mut disk = farm.lock(proc.rank());
        let f = disk.create::<u64>("stream");
        let mut w = BufferedWriter::new(f.clone(), 16);
        let data: Vec<u64> = (0..300).map(|i| i * 7 + proc.rank() as u64).collect();
        for &v in &data {
            w.push(&mut disk, proc, v);
        }
        w.flush(&mut disk, proc);
        let mut reader = disk.reader(&f, 16);
        let mut back = Vec::new();
        while let Some(chunk) = reader.next_chunk(&mut disk, proc) {
            back.push(chunk);
        }
        let flat: Vec<u64> = back.into_iter().flatten().collect();
        assert_eq!(flat, data, "decoded data must round-trip under faults");
        (proc.counters.disk_retries, proc.counters.fault_time, proc.clock())
    });
    let retries: u64 = out.results.iter().map(|&(r, _, _)| r).sum();
    assert!(retries > 0, "20% error rate over ~40 reads must retry");
    for &(r, fault_time, clock) in &out.results {
        if r > 0 {
            assert!(fault_time > 0.0, "retries must charge fault time");
            assert!(clock >= fault_time, "fault time rides on the clock");
        }
    }
}

#[test]
#[should_panic(expected = "type mismatch")]
fn reopening_with_wrong_type_panics() {
    let farm = DiskFarm::in_memory(1);
    let mut disk = farm.lock(0);
    disk.create::<u64>("x");
    let _ = disk.open::<u8>("x");
}

#[test]
#[should_panic(expected = "read_range")]
fn reading_past_end_panics() {
    let farm = DiskFarm::in_memory(1);
    let cluster = Cluster::new(1);
    cluster.run(|proc| {
        let mut disk = farm.lock(0);
        let f = disk.create::<u64>("x");
        disk.append(proc, &f, &[1, 2, 3]);
        let _ = disk.read_range(proc, &f, 2, 5);
    });
}
