//! The asynchronous disk engine end to end: disabled bit-identity, cache
//! hit/miss accounting, prefetch overlap, write-back, and fault injection
//! on the device timeline.

use pdc_cgm::{Cluster, FaultPlan, MachineConfig, OpKind};
use pdc_pario::{BackendKind, DiskFarm, EngineConfig, ReplacementPolicy};

const PAGE: usize = 64 * 1024;

fn engine_cfg(budget_pages: usize, policy: ReplacementPolicy, prefetch: bool) -> EngineConfig {
    EngineConfig::new(budget_pages * PAGE, policy, prefetch)
}

/// A chunked scan with per-chunk compute; returns the rank's finish time.
fn scan_workload(farm: &DiskFarm, p: usize, cfg: MachineConfig) -> Vec<f64> {
    let out = Cluster::with_config(p, cfg).run(|proc| {
        let mut disk = farm.lock(proc.rank());
        let f = disk.create::<u64>("scan");
        let data: Vec<u64> = (0..65_536).collect(); // 512 KiB = 8 pages
        disk.append(proc, &f, &data);
        let chunk = 8_192; // one 64 KiB page per chunk
        let per_chunk_io = {
            let d = &proc.cost_model().disk;
            d.access_latency + (chunk * 8) as f64 / d.bandwidth
        };
        let mut reader = disk.reader(&f, chunk);
        let mut sum = 0u64;
        while let Some(recs) = reader.next_chunk(&mut disk, proc) {
            sum += recs.iter().sum::<u64>();
            // Compute comparable to one chunk's device time: exactly the
            // regime where prefetch hides the next chunk's transfer.
            proc.advance_compute(per_chunk_io);
        }
        assert_eq!(sum, (0..65_536u64).sum::<u64>());
        disk.sync_engine(proc);
    });
    out.stats.iter().map(|s| s.finish_time).collect()
}

#[test]
fn disabled_engine_is_bit_identical_to_the_legacy_path() {
    let run = |farm: DiskFarm| {
        Cluster::new(2).run(move |proc| {
            let mut disk = farm.lock(proc.rank());
            let f = disk.create::<u64>("data");
            disk.append(proc, &f, &(0..4096u64).collect::<Vec<_>>());
            let part = disk.read_range(proc, &f, 100, 200);
            disk.sync_engine(proc); // must be a free no-op without an engine
            let all = disk.read_all(proc, &f);
            (part.len(), all.len())
        })
    };
    let plain = run(DiskFarm::in_memory(2));
    let disabled = run(DiskFarm::with_engine(
        2,
        BackendKind::InMemory,
        &EngineConfig::disabled(),
    ));
    assert_eq!(plain.results, disabled.results);
    for (a, b) in plain.stats.iter().zip(&disabled.stats) {
        assert_eq!(
            a.finish_time.to_bits(),
            b.finish_time.to_bits(),
            "rank {}: disabled engine perturbed the virtual clock",
            a.rank
        );
        assert_eq!(a.counters, b.counters);
    }
}

#[test]
fn cached_reread_is_free_and_counts_hits() {
    let farm = DiskFarm::with_engine(
        1,
        BackendKind::InMemory,
        &engine_cfg(16, ReplacementPolicy::Lru, false),
    );
    let out = Cluster::new(1).run(|proc| {
        let mut disk = farm.lock(0);
        let f = disk.create::<u64>("data");
        let data: Vec<u64> = (0..32_768).collect(); // 256 KiB = 4 pages
        // Uncharged append: the pool starts cold, so the first read misses.
        disk.append_uncharged(&f, &data);
        let first = disk.read_range(proc, &f, 0, 32_768);
        let t_first = proc.clock();
        let misses = proc.counters.cache_misses;
        let second = disk.read_range(proc, &f, 0, 32_768);
        let t_second = proc.clock();
        assert_eq!(first, second);
        assert_eq!(misses, 4, "first read misses each page once");
        assert_eq!(proc.counters.cache_misses, 4, "re-read must not miss");
        assert_eq!(proc.counters.cache_hits, 4, "re-read hits every page");
        assert_eq!(
            t_first.to_bits(),
            t_second.to_bits(),
            "a fully cached read costs nothing"
        );
        disk.sync_engine(proc);
    });
    // Identity with the engine enabled.
    for s in &out.stats {
        let sum = s.counters.compute_time
            + s.counters.comm_time
            + s.counters.io_time
            + s.counters.fault_time
            + s.counters.io_stall_time
            + s.idle_time();
        assert!((sum - s.finish_time).abs() < 1e-9, "accounting identity");
    }
}

#[test]
fn prefetch_overlaps_the_scan_and_is_strictly_faster() {
    let p = 2;
    // Disable the legacy working-set cache heuristic so the synchronous
    // baseline pays the same cold per-request costs as the engine.
    let mut base = MachineConfig::default();
    base.cost.disk.cache_bytes = 0;
    let off = scan_workload(
        &DiskFarm::with_engine(
            p,
            BackendKind::InMemory,
            &engine_cfg(4, ReplacementPolicy::Lru, false),
        ),
        p,
        base.clone(),
    );
    let on = scan_workload(
        &DiskFarm::with_engine(
            p,
            BackendKind::InMemory,
            &engine_cfg(4, ReplacementPolicy::Lru, true),
        ),
        p,
        base.clone(),
    );
    for (rank, (t_on, t_off)) in on.iter().zip(&off).enumerate() {
        assert!(
            t_on < t_off,
            "rank {rank}: prefetch must be strictly faster ({t_on} vs {t_off})"
        );
    }
    // The engine without prefetch must not be slower than the legacy
    // synchronous path on this workload (same requests, just async).
    let legacy = scan_workload(&DiskFarm::in_memory(p), p, base);
    for (t_off, t_legacy) in off.iter().zip(&legacy) {
        assert!(*t_off <= t_legacy * 1.001, "engine-off ~ legacy, got {t_off} vs {t_legacy}");
    }
}

#[test]
fn write_back_defers_and_sync_settles_the_device() {
    let farm = DiskFarm::with_engine(
        1,
        BackendKind::InMemory,
        &engine_cfg(64, ReplacementPolicy::Lru, false),
    );
    Cluster::new(1).run(|proc| {
        let mut disk = farm.lock(0);
        let f = disk.create::<u64>("out");
        let t0 = proc.clock();
        disk.append(proc, &f, &(0..65_536u64).collect::<Vec<_>>()); // 8 pages
        // Write-back: the append itself does not advance the compute clock.
        assert_eq!(proc.clock(), t0);
        proc.charge(OpKind::Misc, 1_000);
        disk.sync_engine(proc);
        // Sync flushed 8 dirty pages as one coalesced device write.
        assert_eq!(proc.counters.disk_writes, 1);
        assert_eq!(proc.counters.disk_write_bytes, 8 * 65_536);
        assert!(proc.counters.io_stall_time > 0.0, "sync waits out the flush");
        assert_eq!(disk.read_all_uncharged(&f).len(), 65_536);
    });
}

#[test]
fn deleted_scratch_files_never_pay_write_back() {
    let farm = DiskFarm::with_engine(
        1,
        BackendKind::InMemory,
        &engine_cfg(64, ReplacementPolicy::Lru, false),
    );
    Cluster::new(1).run(|proc| {
        let mut disk = farm.lock(0);
        let f = disk.create::<u64>("tmp");
        disk.append(proc, &f, &(0..8_192u64).collect::<Vec<_>>());
        disk.delete("tmp");
        disk.sync_engine(proc);
        assert_eq!(proc.counters.disk_writes, 0, "deleted dirty pages are dropped");
        assert_eq!(proc.clock(), 0.0);
    });
}

#[test]
fn engine_reads_retry_transient_faults_and_roundtrip() {
    let p = 2;
    let farm = DiskFarm::with_engine(
        p,
        BackendKind::InMemory,
        &engine_cfg(8, ReplacementPolicy::Clock, true),
    );
    let mut faults = FaultPlan::with_seed(23);
    faults.disk.read_error_prob = 0.15;
    let out = Cluster::with_config(p, MachineConfig { faults, ..MachineConfig::default() })
        .run(|proc| {
            let mut disk = farm.lock(proc.rank());
            let f = disk.create::<u64>("data");
            let data: Vec<u64> = (0..40_000).map(|i| i ^ 0xABCD).collect();
            // Cold pool: every page must come off the (faulty) device.
            disk.append_uncharged(&f, &data);
            let mut reader = disk.reader(&f, 4_096);
            let mut back = Vec::new();
            while let Some(chunk) = reader.next_chunk(&mut disk, proc) {
                back.extend(chunk);
            }
            assert_eq!(back, data, "data must round-trip under device faults");
            disk.sync_engine(proc);
            proc.counters.disk_retries
        });
    let retries: u64 = out.results.iter().sum();
    assert!(retries > 0, "15% error rate must produce device retries");
    for s in &out.stats {
        let sum = s.counters.compute_time
            + s.counters.comm_time
            + s.counters.io_time
            + s.counters.fault_time
            + s.counters.io_stall_time
            + s.idle_time();
        assert!(
            (sum - s.finish_time).abs() < 1e-9,
            "rank {}: identity must hold with faulted async reads",
            s.rank
        );
    }
}
