//! Property-based tests: redistribution conserves and correctly places
//! records for arbitrary routing functions, chunk sizes and machine sizes;
//! the record codec round-trips arbitrary batches.

use pdc_cgm::Cluster;
use pdc_pario::{decode_batch, encode_batch, redistribute, DiskFarm};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn redistribute_conserves_and_places(
        per_proc in proptest::collection::vec(0usize..80, 1..5),
        chunk in 1usize..40,
        route_mod in 1u64..7,
    ) {
        let p = per_proc.len();
        let farm = DiskFarm::in_memory(p);
        let cluster = Cluster::new(p);
        let per_proc = std::sync::Arc::new(per_proc);
        let pp = std::sync::Arc::clone(&per_proc);
        let farm_ref = &farm;
        let out = cluster.run(move |proc| {
            let (src, dst) = {
                let mut disk = farm_ref.lock(proc.rank());
                let src = disk.create::<u64>("src");
                let dst = disk.create::<u64>("dst");
                let data: Vec<u64> = (0..pp[proc.rank()])
                    .map(|i| (proc.rank() * 1_000 + i) as u64)
                    .collect();
                disk.append_uncharged(&src, &data);
                (src, dst)
            };
            let p = proc.nprocs() as u64;
            let got = redistribute(proc, farm_ref, &src, &dst, chunk, move |r| {
                ((*r % route_mod) % p) as usize
            });
            let mut disk = farm_ref.lock(proc.rank());
            disk.read_all_uncharged(&dst).len() == got
        });
        prop_assert!(out.results.iter().all(|&ok| ok));
        // Conservation: total received equals total sent.
        let total_in: usize = per_proc.iter().sum();
        let mut total_out = 0usize;
        for rank in 0..p {
            let mut disk = farm.lock(rank);
            let dst = disk.open::<u64>("dst");
            let records = disk.read_all_uncharged(&dst);
            for r in &records {
                prop_assert_eq!(
                    ((*r % route_mod) % p as u64) as usize,
                    rank,
                    "record {} misplaced", r
                );
            }
            total_out += records.len();
        }
        prop_assert_eq!(total_out, total_in);
    }

    #[test]
    fn codec_roundtrips_arbitrary_batches(
        values in proptest::collection::vec(any::<u64>(), 0..200),
    ) {
        let bytes = encode_batch(&values);
        prop_assert_eq!(decode_batch::<u64>(&bytes), values);
    }

    #[test]
    fn chunked_reader_equals_read_all(
        n in 0usize..300,
        chunk in 1usize..64,
    ) {
        let farm = DiskFarm::in_memory(1);
        let cluster = Cluster::new(1);
        let out = cluster.run(|proc| {
            let mut disk = farm.lock(0);
            let f = disk.create::<u64>("data");
            let values: Vec<u64> = (0..n as u64).collect();
            disk.append(proc, &f, &values);
            let mut reader = disk.reader(&f, chunk);
            let mut collected = Vec::new();
            while let Some(batch) = reader.next_chunk(&mut disk, proc) {
                collected.extend(batch);
            }
            collected == disk.read_all(proc, &f)
        });
        prop_assert!(out.results[0]);
    }
}
